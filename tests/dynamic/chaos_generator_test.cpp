// Structural invariants of the seeded chaos generator: the detectability
// floors (down phases outlive the timeout, up gaps outlive the recovery
// window, faults are spaced apart), whole-beat scheduling, and the mutual
// consistency of the four renderings of one ground truth — chaos_beats,
// chaos_oracle_trace, chaos_transitions, servers_up_at.  These invariants
// are what the inferred-vs-oracle differential suite (tests/health/) and
// the golden chaos signatures stand on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dynamic/chaos_generator.hpp"
#include "util/rng.hpp"

namespace insp {
namespace {

constexpr int kNumServers = 6;

bool is_whole_beats(double seconds, double interval) {
  const double beats = seconds / interval;
  return std::abs(beats - std::round(beats)) < 1e-9;
}

TEST(ChaosGenerator, SameSeedSameTrace) {
  const ChaosGenConfig cfg;
  Rng a(2026), b(2026);
  const ChaosTrace ta = generate_chaos(a, cfg, kNumServers);
  const ChaosTrace tb = generate_chaos(b, cfg, kNumServers);
  ASSERT_EQ(ta.faults.size(), tb.faults.size());
  EXPECT_EQ(ta.horizon_s, tb.horizon_s);
  for (std::size_t i = 0; i < ta.faults.size(); ++i) {
    EXPECT_EQ(ta.faults[i].cls, tb.faults[i].cls);
    EXPECT_EQ(ta.faults[i].servers, tb.faults[i].servers);
    EXPECT_EQ(ta.faults[i].start_s, tb.faults[i].start_s);
    EXPECT_EQ(ta.faults[i].end_s, tb.faults[i].end_s);
  }
}

TEST(ChaosGenerator, FloorsAndWholeBeatSchedulingHoldAcrossSeeds) {
  ChaosGenConfig cfg;
  cfg.num_faults = 8;
  const double interval = cfg.beat_interval_s;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const ChaosTrace trace = generate_chaos(rng, cfg, kNumServers);
    ASSERT_EQ(trace.faults.size(), static_cast<std::size_t>(cfg.num_faults));
    double prev_end = 0.0;
    for (const ChaosFault& f : trace.faults) {
      // Affected sets: non-empty, sorted, in range, never the whole
      // platform.
      ASSERT_FALSE(f.servers.empty());
      EXPECT_TRUE(std::is_sorted(f.servers.begin(), f.servers.end()));
      EXPECT_LT(f.servers.size(), static_cast<std::size_t>(kNumServers));
      EXPECT_GE(f.servers.front(), 0);
      EXPECT_LT(f.servers.back(), kNumServers);
      // Whole-beat scheduling.
      EXPECT_TRUE(is_whole_beats(f.start_s, interval));
      EXPECT_TRUE(is_whole_beats(f.end_s, interval));
      // Disjoint in time, with room for the previous fault's recovery
      // inference to land before this fault begins.  (The inter-fault
      // floor does not apply before the first fault, which only needs to
      // start after the quiet lead-in.)
      if (prev_end > 0.0) {
        EXPECT_GE(f.start_s - prev_end,
                  (cfg.timeout_beats + cfg.recovery_beats + 3) * interval);
      } else {
        EXPECT_GE(f.start_s, cfg.start_beats * interval);
      }
      prev_end = f.end_s;
      if (f.cls == ChaosClass::Brownout) {
        // Delay pushes past the detection timeout, and the window leaves
        // room for the recovery chain over delayed beats.
        EXPECT_GT(f.beat_delay_s, cfg.timeout_beats * interval);
        EXPECT_GE(f.end_s - f.start_s,
                  f.beat_delay_s + cfg.recovery_beats * interval);
        continue;
      }
      EXPECT_GE(f.down_s, (cfg.timeout_beats + 2) * interval);
      EXPECT_GE(f.flaps, 1);
      if (f.cls != ChaosClass::Flapping) EXPECT_EQ(f.flaps, 1);
      if (f.flaps > 1) {
        EXPECT_GE(f.up_gap_s, (cfg.recovery_beats + 2) * interval);
      }
      EXPECT_EQ(f.end_s - f.start_s,
                f.flaps * f.down_s + (f.flaps - 1) * f.up_gap_s);
    }
    EXPECT_GE(trace.horizon_s,
              prev_end + (cfg.timeout_beats + cfg.recovery_beats) * interval);
  }
}

TEST(ChaosGenerator, BeatsAreSortedAndAbsentExactlyDuringDownPhases) {
  ChaosGenConfig cfg;
  cfg.w_brownout = 0.0;  // beat-loss classes only: absence == down phase
  Rng rng(7);
  const ChaosTrace trace = generate_chaos(rng, cfg, kNumServers);
  const std::vector<BeatObservation> beats = chaos_beats(trace);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    EXPECT_TRUE(beats[i - 1].time < beats[i].time ||
                (beats[i - 1].time == beats[i].time &&
                 beats[i - 1].server < beats[i].server));
  }
  // Reconstruct the schedule: server s beats at k * interval unless its
  // ground truth says down.
  const double interval = trace.beat_interval_s;
  const long long n_beats =
      static_cast<long long>(std::llround(trace.horizon_s / interval));
  std::size_t seen = 0;
  for (long long k = 1; k <= n_beats; ++k) {
    const double t = static_cast<double>(k) * interval;
    const std::vector<bool> up = servers_up_at(trace, t);
    for (int s = 0; s < kNumServers; ++s) {
      const bool expect_beat = up[static_cast<std::size_t>(s)];
      const bool found =
          std::any_of(beats.begin(), beats.end(), [&](const BeatObservation& b) {
            return b.server == s && b.time == t;
          });
      EXPECT_EQ(found, expect_beat) << "server " << s << " at t=" << t;
      if (found) ++seen;
    }
  }
  EXPECT_EQ(seen, beats.size());  // no extra (delayed) beats in this family
}

TEST(ChaosGenerator, BrownoutDelaysBeatsInsteadOfDroppingThem) {
  ChaosGenConfig cfg;
  cfg.w_rack = cfg.w_flap = cfg.w_partition = 0.0;
  cfg.num_faults = 3;
  Rng rng(11);
  const ChaosTrace trace = generate_chaos(rng, cfg, kNumServers);
  const std::vector<BeatObservation> beats = chaos_beats(trace);
  const double interval = trace.beat_interval_s;
  // Every scheduled beat of every server is present: brownout loses
  // nothing.
  const long long n_beats =
      static_cast<long long>(std::llround(trace.horizon_s / interval));
  EXPECT_EQ(beats.size(),
            static_cast<std::size_t>(n_beats) *
                static_cast<std::size_t>(kNumServers));
  // Beats scheduled inside a brownout window arrive exactly delay late.
  for (const ChaosFault& f : trace.faults) {
    ASSERT_EQ(f.cls, ChaosClass::Brownout);
    const int s = f.servers.front();
    int delayed = 0;
    for (long long k = 1; k <= n_beats; ++k) {
      const double t = static_cast<double>(k) * interval;
      if (t < f.start_s || t >= f.end_s) continue;
      const double expected = t + f.beat_delay_s;
      EXPECT_TRUE(std::any_of(
          beats.begin(), beats.end(), [&](const BeatObservation& b) {
            return b.server == s && b.time == expected;
          }))
          << "delayed beat of server " << s << " scheduled at " << t;
      ++delayed;
    }
    EXPECT_GT(delayed, 0);
    // The ground truth never takes a brownout server down.
    EXPECT_TRUE(servers_up_at(
        trace, f.start_s + interval)[static_cast<std::size_t>(s)]);
  }
  // ... and the oracle trace is empty: no real transitions happened.
  EXPECT_TRUE(chaos_oracle_trace(trace).events.empty());
}

TEST(ChaosGenerator, OracleTraceMatchesTransitionsAndAvailability) {
  ChaosGenConfig cfg;
  cfg.w_brownout = 0.0;
  cfg.num_faults = 8;
  Rng rng(13);
  const ChaosTrace trace = generate_chaos(rng, cfg, kNumServers);
  const EventTrace oracle = chaos_oracle_trace(trace);
  const std::vector<TruthTransition> transitions = chaos_transitions(trace);
  ASSERT_EQ(oracle.events.size(), transitions.size());
  for (std::size_t i = 0; i < oracle.events.size(); ++i) {
    const WorkloadEvent& e = oracle.events[i];
    const TruthTransition& t = transitions[i];
    EXPECT_EQ(e.time, t.time);
    EXPECT_EQ(e.server, t.server);
    EXPECT_EQ(e.kind == EventKind::ServerFailure, t.down);
    // Just inside a down phase the server is down; at the recovery instant
    // (phase end, half-open) it is back up.
    const std::vector<bool> up = servers_up_at(trace, e.time);
    EXPECT_EQ(up[static_cast<std::size_t>(e.server)], !t.down);
  }
  // Per server the oracle alternates failure / recovery.
  for (int s = 0; s < kNumServers; ++s) {
    bool down = false;
    for (const WorkloadEvent& e : oracle.events) {
      if (e.server != s) continue;
      if (e.kind == EventKind::ServerFailure) {
        EXPECT_FALSE(down);
        down = true;
      } else {
        EXPECT_TRUE(down);
        down = false;
      }
    }
    EXPECT_FALSE(down);  // every fault heals within the horizon
  }
}

TEST(ChaosGenerator, ClassPredicatesAndNames) {
  EXPECT_EQ(all_chaos_classes().size(), 4u);
  EXPECT_TRUE(is_beat_loss(ChaosClass::RackFailure));
  EXPECT_TRUE(is_beat_loss(ChaosClass::Flapping));
  EXPECT_TRUE(is_beat_loss(ChaosClass::Partition));
  EXPECT_FALSE(is_beat_loss(ChaosClass::Brownout));
  for (ChaosClass cls : all_chaos_classes()) {
    EXPECT_STRNE(to_string(cls), "unknown");
  }
}

} // namespace
} // namespace insp
