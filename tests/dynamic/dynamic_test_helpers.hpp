// Shared world builder for the dynamic-layer tests: a small multi-app
// world on a generous platform, so single events exercise the repair paths
// without the whole instance tipping into infeasibility.
#pragma once

#include <vector>

#include "dynamic/workload_events.hpp"
#include "multi/multi_app.hpp"
#include "platform/server_distribution.hpp"
#include "tree/tree_generator.hpp"

namespace insp::dyntest {

struct DynWorld {
  std::vector<ApplicationSpec> apps;
  Platform platform;
  PriceCatalog catalog;
  ObjectCatalog objects;
};

/// `apps` applications of `n_per_app` operators each over a shared 6-type
/// catalog; every type on every one of 3 servers (no single point of
/// failure), paper price catalog.
inline DynWorld make_world(std::uint64_t seed, int apps = 2,
                           int n_per_app = 12, Throughput rho = 0.5) {
  Rng gen(seed);
  ObjectCatalog objects = ObjectCatalog::random(gen, 6, 5.0, 30.0, 0.5);
  TreeGenConfig tcfg;
  tcfg.num_operators = n_per_app;
  tcfg.alpha = 1.0;
  tcfg.num_object_types = 6;
  std::vector<ApplicationSpec> specs;
  for (int a = 0; a < apps; ++a) {
    specs.push_back({generate_random_tree(gen, tcfg, objects), rho});
  }
  std::vector<DataServer> servers;
  for (int s = 0; s < 3; ++s) {
    servers.push_back(DataServer{s, units::gigabytes_per_sec(10.0),
                                 {0, 1, 2, 3, 4, 5}});
  }
  Platform platform(std::move(servers), units::gigabytes_per_sec(1.0),
                    units::gigabytes_per_sec(1.0), 6);
  return DynWorld{std::move(specs), std::move(platform),
                  PriceCatalog::paper_default(), std::move(objects)};
}

inline TraceGenConfig small_trace_config(int events = 40) {
  TraceGenConfig tg;
  tg.num_events = events;
  tg.max_live_apps = 4;
  tg.rho_min = 0.05;
  tg.rho_max = 1.2;
  tg.arrival_tree.num_operators = 12;
  tg.arrival_tree.alpha = 1.0;
  tg.arrival_tree.num_object_types = 6;
  return tg;
}

} // namespace insp::dyntest
