#include "dynamic/repair_allocator.hpp"

#include <gtest/gtest.h>

#include "core/constraints.hpp"
#include "dynamic_test_helpers.hpp"
#include "sim/event_sim.hpp"

namespace insp {
namespace {

using dyntest::make_world;

WorkloadEvent rho_event(int app_id, Throughput rho) {
  WorkloadEvent e;
  e.kind = EventKind::RhoChange;
  e.app_id = app_id;
  e.rho = rho;
  return e;
}

TEST(DynamicAllocator, InitializeProducesValidAllocation) {
  auto w = make_world(21);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  const RepairReport rep = engine.initialize(42);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_GT(engine.cost(), 0.0);
  EXPECT_EQ(engine.num_live_apps(), 2);
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(DynamicAllocator, RhoIncreaseRepairsAndStaysValid) {
  auto w = make_world(22);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  const EventTrace no_trace;
  const RepairReport rep = engine.apply(rho_event(0, 1.0), no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_DOUBLE_EQ(engine.rho_of(0), 1.0);
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
  // The simulator confirms the repaired plan sustains the folded target.
  const EventSimResult sim =
      simulate_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(sim.sustained);
}

TEST(DynamicAllocator, RhoDecreaseConsolidatesCost) {
  auto w = make_world(23, /*apps=*/2, /*n_per_app=*/16, /*rho=*/1.0);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  const Dollars before = engine.cost();
  const EventTrace no_trace;
  RepairReport rep = engine.apply(rho_event(0, 0.05), no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  rep = engine.apply(rho_event(1, 0.05), no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  // Released capacity turns back into dollars (merge + re-pricing passes).
  EXPECT_LE(engine.cost(), before);
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(DynamicAllocator, ObjectRateChangeKeepsAllocationValid) {
  auto w = make_world(24);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  WorkloadEvent e;
  e.kind = EventKind::ObjectRateChange;
  e.object_type = 2;
  e.freq_hz = 2.0;  // 4x the initial 0.5 Hz
  const EventTrace no_trace;
  const RepairReport rep = engine.apply(e, no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_DOUBLE_EQ(engine.forest().catalog().type(2).freq_hz, 2.0);
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(DynamicAllocator, ServerFailureReroutesDownloadsAndRecoveryRestores) {
  auto w = make_world(25);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  WorkloadEvent fail;
  fail.kind = EventKind::ServerFailure;
  fail.server = 0;
  const EventTrace no_trace;
  RepairReport rep = engine.apply(fail, no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_EQ(engine.num_servers_down(), 1);
  ASSERT_FALSE(engine.servers_up()[0]);
  for (const PurchasedProcessor& p : engine.allocation().processors) {
    for (const DownloadRoute& d : p.downloads) {
      EXPECT_NE(d.server, 0) << "download routed to the failed server";
    }
  }
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
  // The simulator, handed the *degraded* view, confirms the re-routed plan
  // still sustains the target — every route now points at healthy servers.
  SimPlatformView degraded = SimPlatformView::uniform(engine.platform());
  degraded.set_server_up(0, false);
  const EventSimResult sim = simulate_allocation(
      engine.problem(), engine.allocation(), degraded);
  EXPECT_TRUE(sim.sustained);

  WorkloadEvent recover;
  recover.kind = EventKind::ServerRecovery;
  recover.server = 0;
  rep = engine.apply(recover, no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_EQ(engine.num_servers_down(), 0);
}

TEST(DynamicAllocator, ArrivalPlacesNewApplication) {
  auto w = make_world(26);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  const int ops_before = engine.forest().num_operators();

  EventTrace trace;
  Rng gen(5);
  TreeGenConfig tcfg;
  tcfg.num_operators = 10;
  tcfg.alpha = 1.0;
  trace.arrival_trees.push_back(
      generate_random_tree(gen, tcfg, w.objects));
  WorkloadEvent e;
  e.kind = EventKind::AppArrival;
  e.app_id = 2;
  e.rho = 0.3;
  e.arrival_tree = 0;
  const RepairReport rep = engine.apply(e, trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_EQ(engine.num_live_apps(), 3);
  EXPECT_TRUE(engine.has_app(2));
  EXPECT_EQ(engine.forest().num_operators(), ops_before + 10);
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(DynamicAllocator, DepartureRemovesAppAndKeepsRestValid) {
  auto w = make_world(27, /*apps=*/3);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  const Dollars before = engine.cost();
  WorkloadEvent e;
  e.kind = EventKind::AppDeparture;
  e.app_id = 1;
  const EventTrace no_trace;
  const RepairReport rep = engine.apply(e, no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_EQ(engine.num_live_apps(), 2);
  EXPECT_FALSE(engine.has_app(1));
  EXPECT_TRUE(engine.has_app(0));
  EXPECT_TRUE(engine.has_app(2));
  EXPECT_LE(engine.cost(), before);
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(DynamicAllocator, EventOnDepartedAppIsBenignNoOp) {
  auto w = make_world(28, /*apps=*/2);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  WorkloadEvent gone;
  gone.kind = EventKind::AppDeparture;
  gone.app_id = 1;
  const EventTrace no_trace;
  ASSERT_TRUE(engine.apply(gone, no_trace).success);
  const Allocation before = engine.allocation();
  const RepairReport rep = engine.apply(rho_event(1, 1.0), no_trace);
  EXPECT_TRUE(rep.success);
  EXPECT_EQ(rep.ops_moved, 0);
  EXPECT_TRUE(engine.allocation() == before);
}

TEST(DynamicAllocator, ImpossibleDemandFailsButKeepsEngineAlive) {
  auto w = make_world(29);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  // A rho far past any CPU in the catalog: no heuristic can host it.
  const EventTrace no_trace;
  const RepairReport rep = engine.apply(rho_event(0, 10000.0), no_trace);
  EXPECT_FALSE(rep.success);
  EXPECT_FALSE(rep.failure_reason.empty());
  // The engine stays usable: lowering rho again repairs the world.
  const RepairReport back = engine.apply(rho_event(0, 0.5), no_trace);
  ASSERT_TRUE(back.success) << back.failure_reason;
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(DynamicAllocator, OutOfRangeEventsAreRejectedNotApplied) {
  auto w = make_world(35);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  const Allocation before = engine.allocation();
  const EventTrace no_trace;

  WorkloadEvent bad_server;
  bad_server.kind = EventKind::ServerFailure;
  bad_server.server = 99;
  EXPECT_FALSE(engine.apply(bad_server, no_trace).success);

  WorkloadEvent bad_type;
  bad_type.kind = EventKind::ObjectRateChange;
  bad_type.object_type = 99;
  bad_type.freq_hz = 1.0;
  EXPECT_FALSE(engine.apply(bad_type, no_trace).success);

  WorkloadEvent bad_arrival;
  bad_arrival.kind = EventKind::AppArrival;
  bad_arrival.app_id = 7;
  bad_arrival.rho = 0.5;
  bad_arrival.arrival_tree = 3;  // no such tree in the (empty) trace
  EXPECT_FALSE(engine.apply(bad_arrival, no_trace).success);

  EXPECT_TRUE(engine.allocation() == before);
}

TEST(DynamicAllocator, WorldSurvivesDrainingToZeroApps) {
  auto w = make_world(36, /*apps=*/2);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);

  EventTrace trace;
  Rng gen(9);
  TreeGenConfig tcfg;
  tcfg.num_operators = 10;
  tcfg.alpha = 1.0;
  trace.arrival_trees.push_back(generate_random_tree(gen, tcfg, w.objects));

  WorkloadEvent depart;
  depart.kind = EventKind::AppDeparture;
  for (int id : {0, 1}) {
    depart.app_id = id;
    ASSERT_TRUE(engine.apply(depart, trace).success);
  }
  EXPECT_EQ(engine.num_live_apps(), 0);
  EXPECT_DOUBLE_EQ(engine.cost(), 0.0);

  // App-facing events in the empty world are benign no-ops, but platform
  // state (a server failure) must still stick...
  ASSERT_TRUE(engine.apply(rho_event(0, 1.0), trace).success);
  WorkloadEvent fail;
  fail.kind = EventKind::ServerFailure;
  fail.server = 0;
  ASSERT_TRUE(engine.apply(fail, trace).success);
  EXPECT_EQ(engine.num_servers_down(), 1);

  // ...and an arrival repopulates the world from nothing, routing around
  // the server that failed while it was empty.
  WorkloadEvent arrive;
  arrive.kind = EventKind::AppArrival;
  arrive.app_id = 2;
  arrive.rho = 0.4;
  arrive.arrival_tree = 0;
  const RepairReport rep = engine.apply(arrive, trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_EQ(engine.num_live_apps(), 1);
  for (const PurchasedProcessor& p : engine.allocation().processors) {
    for (const DownloadRoute& d : p.downloads) EXPECT_NE(d.server, 0);
  }
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

TEST(DynamicAllocator, DepartureOfUnknownAppIsRejected) {
  auto w = make_world(31, /*apps=*/2);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  const Allocation before = engine.allocation();
  const EventTrace no_trace;

  // Never-admitted app: rejected with a structured error, nothing applied.
  WorkloadEvent never;
  never.kind = EventKind::AppDeparture;
  never.app_id = 7;
  RepairReport rep = engine.apply(never, no_trace);
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.error, EventError::kUnknownApp);
  EXPECT_FALSE(rep.failure_reason.empty());
  EXPECT_EQ(engine.num_live_apps(), 2);
  EXPECT_TRUE(engine.allocation() == before);

  // A second departure of an app that already left is the same error.
  WorkloadEvent gone;
  gone.kind = EventKind::AppDeparture;
  gone.app_id = 1;
  ASSERT_TRUE(engine.apply(gone, no_trace).success);
  rep = engine.apply(gone, no_trace);
  EXPECT_FALSE(rep.success);
  EXPECT_EQ(rep.error, EventError::kUnknownApp);
  EXPECT_EQ(engine.num_live_apps(), 1);
}

TEST(DynamicAllocator, DuplicateServerFailureAndRecoveryAreIdempotent) {
  auto w = make_world(32);
  DynamicAllocator engine(w.apps, w.platform, w.catalog);
  ASSERT_TRUE(engine.initialize(42).success);
  const EventTrace no_trace;

  WorkloadEvent fail;
  fail.kind = EventKind::ServerFailure;
  fail.server = 0;
  RepairReport rep = engine.apply(fail, no_trace);
  ASSERT_TRUE(rep.success);
  EXPECT_FALSE(rep.already_known);
  ASSERT_EQ(engine.num_servers_down(), 1);
  const Allocation after_failure = engine.allocation();

  // A detector re-inferring an in-flight failure is a no-op success: the
  // allocation is untouched, no repair pass runs, nothing is double-applied.
  rep = engine.apply(fail, no_trace);
  EXPECT_TRUE(rep.success);
  EXPECT_TRUE(rep.already_known);
  EXPECT_EQ(rep.error, EventError::kNone);
  EXPECT_EQ(rep.ops_moved, 0);
  EXPECT_EQ(rep.procs_bought, 0);
  EXPECT_EQ(rep.reconfigures, 0);
  EXPECT_EQ(rep.cost_after, rep.cost_before);
  EXPECT_EQ(engine.num_servers_down(), 1);
  EXPECT_TRUE(engine.allocation() == after_failure);

  WorkloadEvent recover;
  recover.kind = EventKind::ServerRecovery;
  recover.server = 0;
  rep = engine.apply(recover, no_trace);
  ASSERT_TRUE(rep.success);
  EXPECT_FALSE(rep.already_known);
  EXPECT_EQ(engine.num_servers_down(), 0);

  // Recovering a healthy server is likewise already known.
  rep = engine.apply(recover, no_trace);
  EXPECT_TRUE(rep.success);
  EXPECT_TRUE(rep.already_known);
  EXPECT_EQ(engine.num_servers_down(), 0);

  // Fresh transitions keep reporting kNone and already_known == false.
  rep = engine.apply(fail, no_trace);
  EXPECT_FALSE(rep.already_known);
  rep = engine.apply(recover, no_trace);
  EXPECT_EQ(rep.error, EventError::kNone);
  EXPECT_FALSE(rep.already_known);
}

TEST(DynamicAllocator, AlwaysFallbackModeMatchesScratchPipeline) {
  auto w = make_world(30);
  RepairOptions opts;
  opts.always_fallback = true;
  DynamicAllocator engine(w.apps, w.platform, w.catalog, opts);
  ASSERT_TRUE(engine.initialize(42).success);
  const EventTrace no_trace;
  const RepairReport rep = engine.apply(rho_event(0, 0.8), no_trace);
  ASSERT_TRUE(rep.success) << rep.failure_reason;
  EXPECT_TRUE(rep.used_fallback);
  // Scratch disrupts every operator by definition.
  EXPECT_EQ(rep.ops_moved, engine.forest().num_operators());
  const CheckReport chk =
      check_allocation(engine.problem(), engine.allocation());
  EXPECT_TRUE(chk.ok()) << chk.summary();
}

} // namespace
} // namespace insp
