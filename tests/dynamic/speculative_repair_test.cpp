// Speculative parallel repair (docs/DESIGN.md §10): racing k candidate
// repair plans on state copies must be a pure search-strategy change —
// bit-identical across worker-thread counts, and byte-for-byte the
// sequential engine when speculative_plans <= 1.
#include "dynamic/repair_allocator.hpp"

#include <gtest/gtest.h>

#include "bench_support/dynamic_world.hpp"
#include "dynamic/replay_signature.hpp"

namespace insp {
namespace {

struct Trajectory {
  std::uint64_t signature = 0;
  std::vector<RepairReport> reports;
  int events_with_violations = 0;
};

Trajectory replay(std::uint64_t world_seed, int plans, unsigned threads) {
  // The paper-shaped bench world (tight links, rho drifting up to 1.5)
  // actually overloads processors mid-trace, unlike the generous world the
  // other dynamic tests use — without violations no repair plan ever runs.
  benchx::DynamicWorld world =
      benchx::make_dynamic_world(world_seed, {40, 2, 48});
  RepairOptions opt;
  opt.speculative_plans = plans;
  opt.speculative_threads = threads;
  DynamicAllocator engine(std::move(world.apps), std::move(world.platform),
                          std::move(world.catalog), opt);
  Trajectory t;
  ReplaySignature sig;
  const RepairReport init = engine.initialize(42);
  EXPECT_TRUE(init.success);
  for (const WorkloadEvent& event : world.trace.events) {
    const RepairReport rep = engine.apply(event, world.trace);
    sig.mix_repair(event.kind, rep, engine.allocation().num_processors());
    if (rep.violations_before > 0) ++t.events_with_violations;
    t.reports.push_back(rep);
  }
  sig.mix_allocation(engine.allocation());
  t.signature = sig.h;
  return t;
}

void expect_identical(const Trajectory& a, const Trajectory& b) {
  EXPECT_EQ(a.signature, b.signature);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const RepairReport& x = a.reports[i];
    const RepairReport& y = b.reports[i];
    EXPECT_EQ(x.success, y.success) << "event " << i;
    EXPECT_EQ(x.used_fallback, y.used_fallback) << "event " << i;
    EXPECT_EQ(x.violations_before, y.violations_before) << "event " << i;
    EXPECT_EQ(x.ops_moved, y.ops_moved) << "event " << i;
    EXPECT_EQ(x.procs_bought, y.procs_bought) << "event " << i;
    EXPECT_EQ(x.procs_retired, y.procs_retired) << "event " << i;
    EXPECT_EQ(x.reconfigures, y.reconfigures) << "event " << i;
    EXPECT_EQ(x.cost_before, y.cost_before) << "event " << i;
    EXPECT_EQ(x.cost_after, y.cost_after) << "event " << i;
  }
}

TEST(SpeculativeRepair, BitIdenticalAcrossThreadCounts) {
  const Trajectory serial = replay(7, 4, 1);
  // The trace must actually exercise the repair engine, or the test proves
  // nothing about the speculative path.
  ASSERT_GT(serial.events_with_violations, 0);
  expect_identical(serial, replay(7, 4, 2));
  expect_identical(serial, replay(7, 4, 8));
  expect_identical(serial, replay(7, 4, 0));  // hardware concurrency
}

TEST(SpeculativeRepair, SinglePlanMatchesSequentialEngine) {
  const Trajectory sequential = replay(7, 0, 0);
  ASSERT_GT(sequential.events_with_violations, 0);
  // One speculative plan is plan 0 — the sequential move order exactly.
  expect_identical(sequential, replay(7, 1, 4));
}

TEST(SpeculativeRepair, RepeatedSpeculativeRunsAreBitIdentical) {
  expect_identical(replay(9, 6, 3), replay(9, 6, 3));
}

} // namespace
} // namespace insp
