// Trace-replay determinism (the contract the sweep engine already upholds,
// extended to the online path): the same (world, trace, seed) must produce a
// bit-identical repair sequence and final allocation on every run and for
// every validation thread count.
#include "dynamic/scenario_engine.hpp"

#include <gtest/gtest.h>

#include "dynamic_test_helpers.hpp"

namespace insp {
namespace {

using dyntest::make_world;
using dyntest::small_trace_config;

struct ReplaySetup {
  dyntest::DynWorld world;
  EventTrace trace;
};

ReplaySetup make_setup(std::uint64_t seed, int events) {
  ReplaySetup s{make_world(seed), {}};
  Rng rng(seed ^ 0x5eedull);
  s.trace = generate_trace(rng, small_trace_config(events), 2, 0.5,
                           s.world.platform, s.world.objects);
  return s;
}

ScenarioResult run(const ReplaySetup& s, int threads) {
  ScenarioOptions opts;
  opts.seed = 42;
  opts.simulate = true;
  opts.num_threads = threads;
  return replay_trace(s.world.apps, s.world.platform, s.world.catalog,
                      s.trace, opts);
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_TRUE(a.final_allocation == b.final_allocation);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const RepairReport& x = a.outcomes[i].repair;
    const RepairReport& y = b.outcomes[i].repair;
    EXPECT_EQ(x.success, y.success) << "event " << i;
    EXPECT_EQ(x.used_fallback, y.used_fallback) << "event " << i;
    EXPECT_EQ(x.violations_before, y.violations_before) << "event " << i;
    EXPECT_EQ(x.ops_moved, y.ops_moved) << "event " << i;
    EXPECT_EQ(x.procs_bought, y.procs_bought) << "event " << i;
    EXPECT_EQ(x.procs_retired, y.procs_retired) << "event " << i;
    EXPECT_EQ(x.reconfigures, y.reconfigures) << "event " << i;
    // Bit-exact costs, not approximately equal ones.
    EXPECT_EQ(x.cost_before, y.cost_before) << "event " << i;
    EXPECT_EQ(x.cost_after, y.cost_after) << "event " << i;
    EXPECT_EQ(a.outcomes[i].sustained, b.outcomes[i].sustained)
        << "event " << i;
  }
}

TEST(TraceReplayDeterminism, RepeatedRunsAreBitIdentical) {
  const ReplaySetup s = make_setup(31, 40);
  expect_identical(run(s, 1), run(s, 1));
}

TEST(TraceReplayDeterminism, IndependentOfThreadCount) {
  const ReplaySetup s = make_setup(32, 40);
  const ScenarioResult serial = run(s, 1);
  expect_identical(serial, run(s, 4));
  expect_identical(serial, run(s, 0));  // hardware concurrency
}

TEST(TraceReplayDeterminism, ReplayedTraceSurvivesTextRoundTrip) {
  const ReplaySetup s = make_setup(33, 40);
  ReplaySetup loaded{make_world(33),
                     trace_from_text(trace_to_text(s.trace))};
  expect_identical(run(s, 1), run(loaded, 1));
}

TEST(TraceReplay, EveryRepairedEventValidatesAndSustains) {
  const ReplaySetup s = make_setup(34, 60);
  const ScenarioResult result = run(s, 0);
  EXPECT_EQ(result.summary.events, 60);
  EXPECT_EQ(result.summary.failures, 0);
  for (const EventOutcome& out : result.outcomes) {
    ASSERT_TRUE(out.repair.success) << out.repair.failure_reason;
    EXPECT_TRUE(out.simulated);
    EXPECT_TRUE(out.sustained)
        << to_string(out.event.kind) << " left an unsustainable plan";
  }
}

} // namespace
} // namespace insp
