#include "dynamic/workload_events.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dynamic_test_helpers.hpp"
#include "tree/tree_io.hpp"

namespace insp {
namespace {

using dyntest::make_world;
using dyntest::small_trace_config;

bool events_equal(const WorkloadEvent& a, const WorkloadEvent& b) {
  return a.time == b.time && a.kind == b.kind && a.app_id == b.app_id &&
         a.rho == b.rho && a.object_type == b.object_type &&
         a.freq_hz == b.freq_hz && a.server == b.server &&
         a.arrival_tree == b.arrival_tree;
}

TEST(TraceGenerator, DeterministicGivenSeed) {
  const auto w = make_world(11);
  const TraceGenConfig tg = small_trace_config(60);
  Rng r1(99), r2(99);
  const EventTrace a = generate_trace(r1, tg, 2, 0.5, w.platform, w.objects);
  const EventTrace b = generate_trace(r2, tg, 2, 0.5, w.platform, w.objects);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_TRUE(events_equal(a.events[i], b.events[i])) << "event " << i;
  }
  ASSERT_EQ(a.arrival_trees.size(), b.arrival_trees.size());
  for (std::size_t i = 0; i < a.arrival_trees.size(); ++i) {
    EXPECT_EQ(to_text(a.arrival_trees[i], tg.arrival_tree.alpha),
              to_text(b.arrival_trees[i], tg.arrival_tree.alpha));
  }
}

TEST(TraceGenerator, EventPreconditionsHoldUnderReplay) {
  const auto w = make_world(12);
  const TraceGenConfig tg = small_trace_config(120);
  Rng rng(7);
  const EventTrace trace =
      generate_trace(rng, tg, 2, 0.5, w.platform, w.objects);
  ASSERT_EQ(trace.events.size(), 120u);

  // Mirror the world exactly as a replay would and check every event is
  // applicable at its position.
  std::set<int> live{0, 1};
  std::set<int> down;
  double last_time = 0.0;
  int next_id = 2;
  for (const WorkloadEvent& e : trace.events) {
    EXPECT_GE(e.time, last_time);
    last_time = e.time;
    switch (e.kind) {
      case EventKind::RhoChange:
        EXPECT_TRUE(live.count(e.app_id)) << "rho change on dead app";
        EXPECT_GE(e.rho, tg.rho_min);
        EXPECT_LE(e.rho, tg.rho_max);
        break;
      case EventKind::ObjectRateChange:
        EXPECT_GE(e.object_type, 0);
        EXPECT_LT(e.object_type, w.objects.count());
        EXPECT_GE(e.freq_hz, tg.freq_lo);
        EXPECT_LE(e.freq_hz, tg.freq_hi);
        break;
      case EventKind::ServerFailure:
        EXPECT_FALSE(down.count(e.server)) << "failing a down server";
        down.insert(e.server);
        EXPECT_LE(static_cast<int>(down.size()), tg.max_servers_down);
        break;
      case EventKind::ServerRecovery:
        EXPECT_TRUE(down.count(e.server)) << "recovering an up server";
        down.erase(e.server);
        break;
      case EventKind::AppArrival:
        EXPECT_EQ(e.app_id, next_id++);
        ASSERT_GE(e.arrival_tree, 0);
        ASSERT_LT(static_cast<std::size_t>(e.arrival_tree),
                  trace.arrival_trees.size());
        live.insert(e.app_id);
        EXPECT_LE(static_cast<int>(live.size()), tg.max_live_apps);
        break;
      case EventKind::AppDeparture:
        EXPECT_TRUE(live.count(e.app_id)) << "departing a dead app";
        live.erase(e.app_id);
        EXPECT_GE(static_cast<int>(live.size()), tg.min_live_apps);
        break;
    }
  }
}

TEST(TraceIo, TextRoundTripIsExact) {
  const auto w = make_world(13);
  const TraceGenConfig tg = small_trace_config(50);
  Rng rng(3);
  const EventTrace trace =
      generate_trace(rng, tg, 2, 0.5, w.platform, w.objects);
  const std::string text = trace_to_text(trace);
  const EventTrace back = trace_from_text(text);
  ASSERT_EQ(back.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_TRUE(events_equal(trace.events[i], back.events[i]))
        << "event " << i;
  }
  EXPECT_EQ(back.arrival_alpha, trace.arrival_alpha);
  ASSERT_EQ(back.arrival_trees.size(), trace.arrival_trees.size());
  for (std::size_t i = 0; i < trace.arrival_trees.size(); ++i) {
    EXPECT_EQ(to_text(back.arrival_trees[i], trace.arrival_alpha),
              to_text(trace.arrival_trees[i], trace.arrival_alpha));
  }
  // Idempotence: serializing the parsed trace reproduces the text.
  EXPECT_EQ(trace_to_text(back), text);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(trace_from_text("not a trace"), std::invalid_argument);
  EXPECT_THROW(trace_from_text("cinsp-trace 1\nevent oops"),
               std::invalid_argument);
  EXPECT_THROW(trace_from_text("cinsp-trace 1\ntree 0\nop 0 parent -1\n"),
               std::invalid_argument);  // unterminated tree block
}

TEST(TraceIo, RejectsOutOfRangeIndices) {
  // Negative server on a failure event.
  EXPECT_THROW(
      trace_from_text(
          "cinsp-trace 1\nevent 1 server-failure -1 1 -1 0 -2 -1\n"),
      std::invalid_argument);
  // Arrival referencing a tree the trace does not carry.
  EXPECT_THROW(
      trace_from_text("cinsp-trace 1\nevent 1 app-arrival 2 0.5 -1 0 -1 0\n"),
      std::invalid_argument);
  // Non-positive frequency on a rate change.
  EXPECT_THROW(
      trace_from_text(
          "cinsp-trace 1\nevent 1 object-rate-change -1 1 3 0 -1 -1\n"),
      std::invalid_argument);
}

TEST(TraceGenerator, EmptyTraceConfig) {
  const auto w = make_world(14);
  TraceGenConfig tg = small_trace_config(0);
  Rng rng(1);
  const EventTrace trace =
      generate_trace(rng, tg, 2, 0.5, w.platform, w.objects);
  EXPECT_TRUE(trace.events.empty());
  EXPECT_EQ(trace_from_text(trace_to_text(trace)).events.size(), 0u);
}

} // namespace
} // namespace insp
