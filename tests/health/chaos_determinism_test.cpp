// Determinism of the chaos control loop (docs/DESIGN.md §12): the health
// monitor's replay signature, summary, and final allocation must be
// bit-identical for every validation thread count and under every forced
// SIMD dispatch tier the host can execute — the same contract the sweep
// engine, the scenario engine, and the allocation service uphold.  Runs
// under the plain, ASan/UBSan, and TSan CI jobs.
#include <gtest/gtest.h>

#include <vector>

#include "bench_support/chaos_world.hpp"
#include "health/health_monitor.hpp"
#include "util/simd.hpp"

namespace insp {
namespace {

using benchx::ChaosWorld;
using benchx::make_chaos_world;

std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::detected_isa() >= simd::Isa::kSse2) isas.push_back(simd::Isa::kSse2);
  if (simd::detected_isa() >= simd::Isa::kAvx2) isas.push_back(simd::Isa::kAvx2);
  return isas;
}

class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) { simd::set_forced_isa(isa); }
  ~ScopedIsa() { simd::clear_forced_isa(); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
};

ChaosWorld mixed_world() {
  ChaosGenConfig cfg;  // all four classes in one trace
  cfg.num_faults = 5;
  return make_chaos_world(42, {40, 2}, cfg);
}

HealthMonitorResult run(const ChaosWorld& world, int num_threads) {
  HealthMonitorOptions opts;
  opts.seed = 42;
  opts.simulate = true;  // the parallel validation pass is what threads touch
  opts.num_threads = num_threads;
  return run_health_monitor(world.apps, world.platform, world.catalog,
                            world.trace, opts);
}

void expect_identical(const HealthMonitorResult& a,
                      const HealthMonitorResult& b, const char* label) {
  EXPECT_EQ(a.signature, b.signature) << label;
  EXPECT_TRUE(a.final_allocation == b.final_allocation) << label;
  EXPECT_EQ(a.summary.events, b.summary.events) << label;
  EXPECT_EQ(a.summary.failures, b.summary.failures) << label;
  EXPECT_EQ(a.summary.simulated, b.summary.simulated) << label;
  EXPECT_EQ(a.summary.sustained, b.summary.sustained) << label;
  ASSERT_EQ(a.inferred.size(), b.inferred.size()) << label;
  for (std::size_t i = 0; i < a.inferred.size(); ++i) {
    EXPECT_EQ(a.inferred[i].time, b.inferred[i].time) << label;
    EXPECT_EQ(a.inferred[i].server, b.inferred[i].server) << label;
    EXPECT_EQ(a.inferred[i].down, b.inferred[i].down) << label;
  }
}

TEST(ChaosDeterminism, SignatureIsIdenticalAcrossThreadCounts) {
  const ChaosWorld world = mixed_world();
  const HealthMonitorResult serial = run(world, 1);
  ASSERT_GT(serial.summary.events, 0);
  ASSERT_GT(serial.summary.simulated, 0);
  for (int threads : {2, 8}) {
    expect_identical(serial, run(world, threads),
                     ("threads=" + std::to_string(threads)).c_str());
  }
}

TEST(ChaosDeterminism, SignatureIsIdenticalAcrossForcedIsaTiers) {
  const ChaosWorld world = mixed_world();
  HealthMonitorResult baseline;
  {
    ScopedIsa forced(simd::Isa::kScalar);
    baseline = run(world, 2);
  }
  for (simd::Isa isa : available_isas()) {
    ScopedIsa forced(isa);
    expect_identical(baseline, run(world, 2), simd::to_string(isa));
  }
}

} // namespace
} // namespace insp
