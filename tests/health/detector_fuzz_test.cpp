// Detector fuzz (docs/DESIGN.md §12): a seeded 1000-step walk over beat
// schedules — beats dropped, delayed (including landing *exactly* on the
// timeout boundary), restored, flapping at the detection threshold, mixed
// with polls of random granularity — checked after every step against a
// naive oracle that recomputes each server's state from its full beat
// history from scratch.  The incremental state machine and the naive
// recompute share only the canonical deadline expression
// (FailureDetectorConfig::deadline_after), so boundary cases compare
// exactly, not approximately.
#include <gtest/gtest.h>

#include <vector>

#include "health/failure_detector.hpp"
#include "util/rng.hpp"

namespace insp {
namespace {

/// Naive oracle: given a server's complete beat history (ascending arrival
/// times) and the current poll time, replay the rules from scratch —
/// O(history) per query, structured as a fold over history rather than an
/// event-driven machine.
bool naive_is_up(const FailureDetectorConfig& cfg,
                 const std::vector<double>& history, double now) {
  bool up = true;
  double last = 0.0;  // servers start as if they beat at t = 0
  int chain = 0;
  for (double b : history) {
    if (up && cfg.deadline_after(last) < b) {
      up = false;
      chain = 0;
    }
    if (up) {
      last = b;
      continue;
    }
    chain = b <= cfg.deadline_after(last) ? chain + 1 : 1;
    last = b;
    if (chain >= cfg.recovery_beats) {
      up = true;
      chain = 0;
    }
  }
  if (up && cfg.deadline_after(last) < now) up = false;
  return up;
}

TEST(DetectorFuzz, ThousandStepWalkMatchesNaiveRecomputeFromHistory) {
  constexpr int kServers = 4;
  constexpr int kSteps = 1000;
  FailureDetectorConfig cfg;
  cfg.beat_interval_s = 1.0;
  cfg.timeout_beats = 3.0;
  cfg.recovery_beats = 2;

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FailureDetector det(cfg, kServers);
    std::vector<std::vector<double>> history(kServers);
    std::vector<double> last_beat(kServers, 0.0);
    double now = 0.0;
    double last_transition_time = 0.0;
    std::vector<int> last_dir(kServers, -1);  // -1 none, 1 down, 0 up

    Rng rng(seed * 0x9e3779b97f4a7c15ull);
    for (int step = 0; step < kSteps; ++step) {
      std::vector<InferredTransition> emitted;
      const int action = static_cast<int>(rng.uniform_int(0, 9));
      if (action < 7) {
        // Beat from a random server.  Arrival time: usually a short hop
        // forward (dropping / restoring beats arises from which servers
        // the walk happens to pick), sometimes *exactly* the sender's
        // timeout boundary, sometimes just past it — the flapping-at-the-
        // threshold cases.
        const int s = static_cast<int>(rng.index(kServers));
        double t;
        const int flavor = static_cast<int>(rng.uniform_int(0, 4));
        const double boundary = cfg.deadline_after(last_beat[s]);
        if (flavor == 0 && boundary >= now) {
          t = boundary;  // timely by exactly zero margin
        } else if (flavor == 1 && boundary + 0.25 >= now) {
          t = boundary + 0.25;  // conclusively late
        } else {
          t = now + 0.25 * static_cast<double>(rng.uniform_int(0, 6));
        }
        emitted = det.beat(t, s);
        history[static_cast<std::size_t>(s)].push_back(t);
        last_beat[s] = t;
        now = t;
      } else {
        // Poll of random granularity, including zero-width.
        now += 0.25 * static_cast<double>(rng.uniform_int(0, 12));
        emitted = det.advance_to(now);
      }

      // Emission sanity: nondecreasing times, per-server alternation.
      for (const InferredTransition& tr : emitted) {
        EXPECT_GE(tr.time, last_transition_time);
        last_transition_time = tr.time;
        EXPECT_NE(last_dir[tr.server], tr.down ? 1 : 0)
            << "duplicate transition for server " << tr.server;
        last_dir[tr.server] = tr.down ? 1 : 0;
      }
      // The oracle: every server's belief recomputed from scratch.
      for (int s = 0; s < kServers; ++s) {
        ASSERT_EQ(det.is_up(s),
                  naive_is_up(cfg, history[static_cast<std::size_t>(s)], now))
            << "seed " << seed << " step " << step << " server " << s
            << " now " << now;
      }
    }
  }
}

} // namespace
} // namespace insp
