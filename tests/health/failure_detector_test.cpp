// Unit tests of the heartbeat failure detector's state machine (docs/
// DESIGN.md §12): the canonical deadline expression, boundary beats,
// poll-granularity independence, the recovery-confirmation chain, and the
// brownout case where one delayed beat both convicts and begins to pardon
// its sender.
#include <gtest/gtest.h>

#include "health/failure_detector.hpp"

namespace insp {
namespace {

FailureDetectorConfig config(double timeout_beats = 3.0,
                             int recovery_beats = 2) {
  FailureDetectorConfig cfg;
  cfg.beat_interval_s = 1.0;
  cfg.timeout_beats = timeout_beats;
  cfg.recovery_beats = recovery_beats;
  return cfg;
}

TEST(FailureDetector, SilentServerExpiresAtItsDeadline) {
  FailureDetector det(config(), /*num_servers=*/2);
  // Server 0 beats; server 1 stays silent from its assumed beat at t=0.
  EXPECT_TRUE(det.beat(1.0, 0).empty());
  EXPECT_TRUE(det.beat(2.0, 0).empty());
  // Polling far past both deadlines reports both expiries, each carrying
  // its own deadline as the transition time, sorted by (time, server):
  // server 1 died at 0 + 3, server 0 at 2 + 3.
  const std::vector<InferredTransition> got = det.advance_to(10.0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].time, 3.0);
  EXPECT_EQ(got[0].server, 1);
  EXPECT_TRUE(got[0].down);
  EXPECT_EQ(got[1].time, 5.0);
  EXPECT_EQ(got[1].server, 0);
  EXPECT_TRUE(got[1].down);
  EXPECT_FALSE(det.is_up(0));
  EXPECT_FALSE(det.is_up(1));
}

TEST(FailureDetector, TransitionTimeIsIndependentOfPollGranularity) {
  // Same silence, two poll schedules: one coarse jump vs many fine steps.
  FailureDetector coarse(config(), 1);
  const std::vector<InferredTransition> a = coarse.advance_to(9.0);
  FailureDetector fine(config(), 1);
  std::vector<InferredTransition> b;
  for (double t = 0.25; t <= 9.0; t += 0.25) {
    for (const InferredTransition& tr : fine.advance_to(t)) b.push_back(tr);
  }
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].time, b[0].time);  // == the deadline, 3.0, both ways
  EXPECT_EQ(a[0].time, 3.0);
}

TEST(FailureDetector, BoundaryBeatIsTimely) {
  FailureDetector det(config(), 1);
  // Deadline after the assumed beat at 0 is exactly 3.0; polling *to* the
  // deadline expires nothing, and a beat landing exactly on it is timely.
  EXPECT_TRUE(det.advance_to(3.0).empty());
  EXPECT_TRUE(det.beat(3.0, 0).empty());
  EXPECT_TRUE(det.is_up(0));
  // One tick past the next deadline (6.0) is conclusive.
  const std::vector<InferredTransition> got = det.advance_to(6.5);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].time, 6.0);
}

TEST(FailureDetector, RecoveryNeedsConsecutiveTimelyBeats) {
  FailureDetector det(config(3.0, /*recovery_beats=*/3), 1);
  ASSERT_EQ(det.advance_to(10.0).size(), 1u);  // down at 3.0
  // Two timely beats, then a gap that breaks the chain.
  EXPECT_TRUE(det.beat(10.0, 0).empty());
  EXPECT_TRUE(det.beat(11.0, 0).empty());
  EXPECT_TRUE(det.beat(20.0, 0).empty());  // late: chain restarts at 1
  EXPECT_FALSE(det.is_up(0));
  // Three consecutive timely beats from here: trusted again at the third.
  EXPECT_TRUE(det.beat(21.0, 0).empty());
  const std::vector<InferredTransition> got = det.beat(22.0, 0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].time, 22.0);
  EXPECT_FALSE(got[0].down);
  EXPECT_TRUE(det.is_up(0));
}

TEST(FailureDetector, DelayedBeatConvictsAndBeginsToPardonItsSender) {
  // Brownout shape: beats at 1 and 2, then the beat scheduled at 3 arrives
  // at 7.5 — past the deadline 2 + 3 = 5.  The single beat() call reports
  // the expiry (at the deadline, not at arrival) and starts the recovery
  // chain; the next delayed beat completes it (recovery_beats = 2).
  FailureDetector det(config(), 1);
  EXPECT_TRUE(det.beat(1.0, 0).empty());
  EXPECT_TRUE(det.beat(2.0, 0).empty());
  const std::vector<InferredTransition> conviction = det.beat(7.5, 0);
  ASSERT_EQ(conviction.size(), 1u);
  EXPECT_EQ(conviction[0].time, 5.0);
  EXPECT_TRUE(conviction[0].down);
  EXPECT_FALSE(det.is_up(0));
  const std::vector<InferredTransition> pardon = det.beat(8.5, 0);
  ASSERT_EQ(pardon.size(), 1u);
  EXPECT_EQ(pardon[0].time, 8.5);
  EXPECT_FALSE(pardon[0].down);
  EXPECT_TRUE(det.is_up(0));
}

TEST(FailureDetector, SuspicionCrossesTimeoutExactlyAtExpiry) {
  FailureDetector det(config(), 1);
  det.beat(2.0, 0);
  EXPECT_EQ(det.suspicion(0, 2.0), 0.0);
  EXPECT_EQ(det.suspicion(0, 3.5), 1.5);
  EXPECT_EQ(det.suspicion(0, 5.0), det.config().timeout_beats);
  EXPECT_GT(det.suspicion(0, 5.25), det.config().timeout_beats);
}

TEST(FailureDetector, ServersUpTracksBeliefs) {
  FailureDetector det(config(3.0, 1), 3);
  det.beat(3.0, 0);
  det.beat(3.0, 2);
  det.advance_to(4.0);  // server 1 expired at 3.0
  const std::vector<bool> up = det.servers_up();
  ASSERT_EQ(up.size(), 3u);
  EXPECT_TRUE(up[0]);
  EXPECT_FALSE(up[1]);
  EXPECT_TRUE(up[2]);
  // recovery_beats == 1: a single beat restores trust immediately.
  const std::vector<InferredTransition> got = det.beat(5.0, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_FALSE(got[0].down);
  EXPECT_TRUE(det.is_up(1));
}

} // namespace
} // namespace insp
