// Differential oracle suite (docs/DESIGN.md §12): for beat-loss chaos
// traces the failure detector's inferred event stream must drive
// DynamicAllocator repair to *exactly* the same place as the ground-truth
// oracle trace — same final allocation, same replay signature — because
// the generator's detectability floors make inference 1:1 with ground
// truth and order-preserving, and the signature mixes repair outcomes,
// never event times.  Detection latency may shift *when* repairs happen;
// it must never change *what* they do.  Swept over >= 20 seeds.
#include <gtest/gtest.h>

#include <string>

#include "bench_support/chaos_world.hpp"
#include "dynamic/scenario_engine.hpp"
#include "health/health_monitor.hpp"

namespace insp {
namespace {

using benchx::ChaosWorld;
using benchx::make_chaos_world;

HealthMonitorOptions monitor_options(const ChaosGenConfig& cfg,
                                     std::uint64_t seed) {
  HealthMonitorOptions opts;
  opts.detector.beat_interval_s = cfg.beat_interval_s;
  opts.detector.timeout_beats = cfg.timeout_beats;
  opts.detector.recovery_beats = cfg.recovery_beats;
  opts.seed = seed;
  opts.simulate = false;  // the signature covers trajectory + allocation
  return opts;
}

TEST(HealthMonitor, InferredRepairsMatchOracleReplayAcrossSeeds) {
  ChaosGenConfig cfg;
  cfg.w_brownout = 0.0;  // beat-loss family: the oracle-equivalence rule
  cfg.num_faults = 4;
  for (std::uint64_t seed = 1; seed <= 21; ++seed) {
    const ChaosWorld world = make_chaos_world(seed, {40, 2}, cfg);
    const EventTrace oracle = chaos_oracle_trace(world.trace);

    const HealthMonitorResult inferred = run_health_monitor(
        world.apps, world.platform, world.catalog, world.trace,
        monitor_options(cfg, seed));

    ScenarioOptions ropts;
    ropts.seed = seed;
    ropts.simulate = false;
    const ScenarioResult reference = replay_trace(
        world.apps, world.platform, world.catalog, oracle, ropts);

    // 1:1, order-preserving inference: same event kinds against the same
    // servers, in the same order.
    ASSERT_EQ(inferred.outcomes.size(), oracle.events.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < oracle.events.size(); ++i) {
      EXPECT_EQ(inferred.outcomes[i].event.kind, oracle.events[i].kind)
          << "seed " << seed << " event " << i;
      EXPECT_EQ(inferred.outcomes[i].event.server, oracle.events[i].server)
          << "seed " << seed << " event " << i;
      // ... and detection always lags ground truth, never precedes it.
      EXPECT_GE(inferred.outcomes[i].event.time, oracle.events[i].time);
    }
    // The destination is identical: allocation and trajectory signature.
    EXPECT_TRUE(inferred.final_allocation == reference.final_allocation)
        << "seed " << seed;
    EXPECT_EQ(inferred.signature, reference.signature) << "seed " << seed;
    // Every inferred repair succeeded (the floors guarantee the world the
    // allocator sees is always consistent).
    EXPECT_EQ(inferred.summary.failures, 0) << "seed " << seed;
  }
}

TEST(HealthMonitor, ScorecardIsPerfectOnGeneratedBeatLossTraces) {
  ChaosGenConfig cfg;
  cfg.w_brownout = 0.0;
  cfg.num_faults = 5;
  const ChaosWorld world = make_chaos_world(123, {40, 2}, cfg);
  const HealthMonitorResult run = run_health_monitor(
      world.apps, world.platform, world.catalog, world.trace,
      monitor_options(cfg, 123));
  ASSERT_GT(run.score.truth_down, 0);
  EXPECT_EQ(run.score.detected, run.score.truth_down);
  EXPECT_EQ(run.score.repaired, run.score.truth_down);
  EXPECT_EQ(run.score.recovered, run.score.truth_up);
  // A lost beat becomes conclusive one timeout after the last timely beat:
  // with phase starts on the beat grid that is timeout - 1 beats after the
  // phase start, never sooner, and the recovery chain completes
  // recovery_beats - 1 beats after the heal.
  EXPECT_EQ(run.score.mean_detection_beats, cfg.timeout_beats - 1.0);
  EXPECT_EQ(run.score.max_detection_beats, cfg.timeout_beats - 1.0);
  EXPECT_EQ(run.score.mean_recovery_beats,
            static_cast<double>(cfg.recovery_beats - 1));
}

TEST(HealthMonitor, BrownoutInferencesAreFalsePositivesThatGetUndone) {
  ChaosGenConfig cfg;
  cfg.w_rack = cfg.w_flap = cfg.w_partition = 0.0;  // brownouts only
  cfg.num_faults = 3;
  const ChaosWorld world = make_chaos_world(7, {40, 2}, cfg);
  ASSERT_TRUE(chaos_oracle_trace(world.trace).events.empty());
  const HealthMonitorResult run = run_health_monitor(
      world.apps, world.platform, world.catalog, world.trace,
      monitor_options(cfg, 7));
  // Every brownout is flagged (gray nodes must not go unnoticed)...
  EXPECT_EQ(run.score.detected, run.score.truth_down);
  EXPECT_EQ(run.score.recovered, run.score.truth_up);
  // ... and every conviction is later undone: the stream ends on a
  // recovery and pairs off (one up per down, per server).
  ASSERT_EQ(run.inferred.size(), run.outcomes.size());
  ASSERT_FALSE(run.inferred.empty());
  EXPECT_FALSE(run.inferred.back().down);
  EXPECT_EQ(run.score.truth_down, run.score.truth_up);
  // Echo differential: replaying the *inferred* stream through the plain
  // scenario engine must land exactly where the control loop landed — the
  // monitor adds detection, never repair semantics.
  EventTrace echoed;
  for (const InferredTransition& tr : run.inferred) {
    WorkloadEvent e;
    e.time = tr.time;
    e.kind = tr.down ? EventKind::ServerFailure : EventKind::ServerRecovery;
    e.server = tr.server;
    echoed.events.push_back(e);
  }
  ScenarioOptions ropts;
  ropts.seed = 7;
  ropts.simulate = false;
  const ScenarioResult echo = replay_trace(world.apps, world.platform,
                                           world.catalog, echoed, ropts);
  EXPECT_EQ(run.signature, echo.signature);
  EXPECT_TRUE(run.final_allocation == echo.final_allocation);
}

} // namespace
} // namespace insp
