// Differential test subsystem for the incremental branch-and-bound
// (docs/DESIGN.md §14): on exhaustively enumerable instances the journal-
// based search, the copy-era reference search and an independent brute
// force over ALL set partitions must agree on status and bit-for-bit on
// cost.  Catalog prices are integral and partition costs are short sums of
// them, so double arithmetic is exact and bit-for-bit equality between the
// two searches is the contract, not an approximation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "../test_helpers.hpp"
#include "core/constraints.hpp"
#include "ilp/exact_solver.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Price one complete partition: most-expensive pre-provisioning, exact
/// download routing, then the cheapest configuration meeting each
/// processor's realized load.  Returns nullopt when the partition is
/// infeasible (no routing, or a load no configuration covers).
std::optional<Dollars> price_partition(const Problem& prob,
                                       const std::vector<int>& label,
                                       int blocks) {
  const int n = prob.tree->num_operators();
  Allocation a;
  a.op_to_proc.assign(static_cast<std::size_t>(n), 0);
  a.processors.resize(static_cast<std::size_t>(blocks));
  for (int i = 0; i < n; ++i) {
    const int u = label[static_cast<std::size_t>(i)];
    a.processors[static_cast<std::size_t>(u)].ops.push_back(i);
    a.op_to_proc[static_cast<std::size_t>(i)] = u;
  }
  for (auto& p : a.processors) p.config = prob.catalog->most_expensive();
  if (!route_downloads_exact(prob, a)) return std::nullopt;
  const auto loads = compute_processor_loads(prob, a);
  Dollars cost = 0.0;
  for (std::size_t u = 0; u < a.processors.size(); ++u) {
    const auto cfg = prob.catalog->cheapest_meeting(loads[u].cpu_demand,
                                                    loads[u].nic_total());
    if (!cfg) return std::nullopt;
    a.processors[u].config = *cfg;
    cost += prob.catalog->cost(*cfg);
  }
  if (!check_allocation(prob, a).ok()) return std::nullopt;
  return cost;
}

/// Exhaustive optimum over every set partition of the operators,
/// enumerated as restricted growth strings (no pruning, no ordering
/// heuristics, no shared search machinery): the independent oracle.
double brute_force_best(const Problem& prob) {
  const int n = prob.tree->num_operators();
  std::vector<int> label(static_cast<std::size_t>(n), 0);
  double best = kInf;
  // label[i] in [0, 1 + max(label[0..i-1])]: every partition exactly once.
  auto rec = [&](auto&& self, int i, int next_block) -> void {
    if (i == n) {
      const auto cost = price_partition(prob, label, next_block);
      if (cost) best = std::min(best, *cost);
      return;
    }
    for (int l = 0; l <= next_block && l < n; ++l) {
      label[static_cast<std::size_t>(i)] = l;
      self(self, i + 1, std::max(next_block, l + 1));
    }
  };
  rec(rec, 0, 0);
  return best;
}

void expect_three_way_agreement(const Fixture& f, const char* what) {
  const Problem prob = f.problem();
  const ExactResult inc = solve_exact(prob);
  const ExactResult ref = solve_exact_reference(prob);
  const double brute = brute_force_best(prob);

  ASSERT_NE(inc.status, ExactStatus::BudgetExhausted) << what;
  ASSERT_NE(ref.status, ExactStatus::BudgetExhausted) << what;
  EXPECT_EQ(inc.status, ref.status) << what;
  if (inc.status == ExactStatus::Optimal) {
    ASSERT_TRUE(inc.cost.has_value()) << what;
    ASSERT_TRUE(ref.cost.has_value()) << what;
    // Bit-for-bit: both searches price partitions with the same integral
    // catalog arithmetic.
    EXPECT_EQ(*inc.cost, *ref.cost) << what;
    ASSERT_TRUE(std::isfinite(brute)) << what;
    EXPECT_NEAR(*inc.cost, brute, 1e-6) << what;
    ASSERT_TRUE(inc.allocation.has_value()) << what;
    EXPECT_TRUE(check_allocation(prob, *inc.allocation).ok()) << what;
  } else {
    EXPECT_TRUE(std::isinf(brute)) << what;
    EXPECT_FALSE(inc.cost.has_value()) << what;
    EXPECT_FALSE(ref.cost.has_value()) << what;
  }
}

TEST(BbIncrementalDiff, ExhaustiveAgreementUpToEightOperators) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    for (int n : {2, 3, 4, 5, 6, 7, 8}) {
      for (double alpha : {1.0, 1.6}) {
        const Fixture f = testhelpers::random_fixture(seed, n, alpha);
        const std::string what = "seed=" + std::to_string(seed) +
                                 " n=" + std::to_string(n) +
                                 " alpha=" + std::to_string(alpha);
        expect_three_way_agreement(f, what.c_str());
      }
    }
  }
}

TEST(BbIncrementalDiff, ExhaustiveAgreementAtTenOperators) {
  // Bell(10) = 115975 partitions per instance: two seeds keep the oracle
  // affordable while still covering the ISSUE's N <= 10 floor.
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 10, 1.5);
    const std::string what = "seed=" + std::to_string(seed) + " n=10";
    expect_three_way_agreement(f, what.c_str());
  }
}

TEST(BbIncrementalDiff, AgreementOnPaperFigure) {
  for (double alpha : {1.0, 1.8, 1.85, 2.5}) {
    const Fixture f = testhelpers::fig1a_fixture(alpha, 30.0);
    const std::string what = "fig1a alpha=" + std::to_string(alpha);
    expect_three_way_agreement(f, what.c_str());
  }
}

TEST(BbIncrementalDiff, BudgetMonotonicityNeverWorsensTheIncumbent) {
  // The incremental search expands a deterministic node sequence, so a
  // larger budget explores a superset of nodes: the reported upper bound is
  // monotone non-increasing in the budget, and once some budget proves
  // Optimal every larger budget reports the identical cost.
  const Fixture f = testhelpers::random_fixture(3, 10, 1.6);
  const Problem prob = f.problem();

  for (const bool seeded : {false, true}) {
    ExactSolverConfig cfg;
    cfg.seed_with_heuristics = seeded;
    double prev_cost = kInf;
    std::optional<Dollars> optimal_cost;
    for (const std::uint64_t budget :
         {std::uint64_t{1}, std::uint64_t{8}, std::uint64_t{64},
          std::uint64_t{512}, std::uint64_t{4096}, std::uint64_t{0}}) {
      cfg.node_budget = budget;
      const ExactResult r = solve_exact(prob, cfg);
      const char* what = seeded ? "seeded" : "unseeded";
      if (optimal_cost) {
        // A previously proved optimum must be reproduced, not revised.
        ASSERT_EQ(r.status, ExactStatus::Optimal)
            << what << " budget=" << budget;
        EXPECT_EQ(*r.cost, *optimal_cost) << what << " budget=" << budget;
        continue;
      }
      if (r.cost) {
        EXPECT_LE(*r.cost, prev_cost + 1e-9) << what << " budget=" << budget;
        prev_cost = *r.cost;
      }
      if (r.status == ExactStatus::Optimal) optimal_cost = r.cost;
    }
    // The unlimited budget run must have settled the instance.
    EXPECT_TRUE(optimal_cost.has_value()) << (seeded ? "seeded" : "unseeded");
  }
}

TEST(BbIncrementalDiff, ReferenceSearchSharesBudgetSemantics) {
  const Fixture f = testhelpers::random_fixture(3, 10, 1.6);
  const Problem prob = f.problem();
  ExactSolverConfig tiny;
  tiny.node_budget = 3;
  const ExactResult capped = solve_exact_reference(prob, tiny);
  EXPECT_EQ(capped.status, ExactStatus::BudgetExhausted);
  const ExactResult full = solve_exact_reference(prob);
  ASSERT_EQ(full.status, ExactStatus::Optimal);
  const ExactResult inc = solve_exact(prob);
  ASSERT_EQ(inc.status, ExactStatus::Optimal);
  EXPECT_EQ(*full.cost, *inc.cost);
}

} // namespace
} // namespace insp
