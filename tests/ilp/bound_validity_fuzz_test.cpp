// Fuzzed validity of the composite lower bound (docs/DESIGN.md §14): over
// 1000+ seeded random problems — trees AND shared-subexpression DAGs — the
// cost lower bound must sit at or below EVERY feasible allocation any
// registry heuristic (with and without local search) produces, the
// processor-count lower bound must never exceed a realized processor
// count, and the binding label must name the term that produced the value.
// A lower bound that ever crosses a feasible cost would silently poison
// branch-and-bound pruning and every reported optimality gap.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "ilp/bounds.hpp"
#include "multi/multi_app.hpp"
#include "multi/subexpression_fold.hpp"
#include "platform/server_distribution.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;

const std::set<std::string>& known_bindings() {
  static const std::set<std::string> kBindings = {
      "one-processor",
      "processor-count",
      "heaviest-operator",
      "heaviest-operator-unplaceable",
      "fractional-packing",
      "forced-communication",
  };
  return kBindings;
}

/// The shared validity oracle: every feasible allocation's cost dominates
/// the bound, every realized processor count dominates the count bound.
void check_problem(const Problem& prob, const std::string& what,
                   std::uint64_t seed) {
  const CostLowerBound lb = cost_lower_bound(prob);
  const int count_lb = processor_count_lower_bound(prob);

  ASSERT_EQ(known_bindings().count(lb.binding), 1u)
      << what << " unknown binding '" << lb.binding << "'";
  EXPECT_GE(count_lb, 1) << what;
  if (!std::isfinite(lb.value)) {
    EXPECT_EQ(lb.binding, "heaviest-operator-unplaceable") << what;
  } else {
    EXPECT_GE(lb.value, 0.0) << what;
  }

  for (HeuristicKind h : all_heuristics()) {
    for (const bool local_search : {false, true}) {
      AllocatorOptions opts;
      opts.local_search = local_search;
      Rng rng(seed);
      const AllocationOutcome out = allocate(prob, h, rng, opts);
      if (!out.success) continue;
      // An infinite bound certifies infeasibility; a feasible allocation
      // contradicts it outright.
      ASSERT_TRUE(std::isfinite(lb.value))
          << what << " " << heuristic_name(h)
          << " found a feasible allocation under an infinite bound";
      EXPECT_LE(lb.value, out.cost + 1e-6)
          << what << " " << heuristic_name(h)
          << (local_search ? "+local-search" : "") << " cost " << out.cost;
      EXPECT_LE(count_lb, out.allocation.num_processors())
          << what << " " << heuristic_name(h)
          << (local_search ? "+local-search" : "");
    }
  }
}

TEST(BoundValidityFuzz, TreesNeverExceedAnyFeasibleCost) {
  // 800 tree instances across sizes 2..12 and alphas 0.8..2.0.
  constexpr double kAlphas[] = {0.8, 1.1, 1.4, 1.7, 2.0};
  for (std::uint64_t seed = 0; seed < 800; ++seed) {
    const int n = 2 + static_cast<int>(seed % 11);
    const double alpha = kAlphas[(seed / 11) % 5];
    const Fixture f = testhelpers::random_fixture(seed, n, alpha);
    const std::string what = "tree seed=" + std::to_string(seed) +
                             " n=" + std::to_string(n) +
                             " alpha=" + std::to_string(alpha);
    check_problem(f.problem(), what, seed);
  }
}

TEST(BoundValidityFuzz, SharedSubexpressionDagsNeverExceedAnyFeasibleCost) {
  // 300 folded-DAG instances: two identical applications (maximal sharing)
  // plus one independent, folded into a multicast DAG — the bound's
  // dedup-aware communication and download terms must stay valid when
  // operators have multiple parents.
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng gen(seed);
    ObjectCatalog objects = ObjectCatalog::random(gen, 12, 5.0, 30.0, 0.5);
    TreeGenConfig tcfg;
    tcfg.num_operators = 6 + static_cast<int>(seed % 5);
    tcfg.alpha = 0.9 + 0.1 * static_cast<double>(seed % 9);
    std::vector<ApplicationSpec> apps;
    {
      Rng t(seed * 3 + 1);
      apps.push_back({generate_random_tree(t, tcfg, objects), 1.0});
    }
    {
      Rng t(seed * 3 + 1);  // identical draw: guaranteed shared subtrees
      apps.push_back({generate_random_tree(t, tcfg, objects), 1.0});
    }
    {
      Rng t(seed * 3 + 2);
      apps.push_back({generate_random_tree(t, tcfg, objects), 1.0});
    }
    const CombinedApplication combined = combine_applications(apps);
    const FoldResult fold = fold_shared_subexpressions(combined.forest);

    ServerDistConfig dist;
    Rng pg(seed ^ 0x9E3779B9u);
    const Platform platform = make_paper_platform(pg, dist);
    const PriceCatalog catalog = PriceCatalog::paper_default();

    Problem prob;
    prob.tree = &fold.dag;
    prob.platform = &platform;
    prob.catalog = &catalog;
    prob.rho = 1.0;

    const std::string what = "dag seed=" + std::to_string(seed);
    ASSERT_GT(fold.stats.shared_nodes, 0) << what;  // genuinely a DAG
    check_problem(prob, what, seed);
  }
}

TEST(BoundValidityFuzz, BindingLabelsReflectTheDominantTerm) {
  // Spot checks that the labels are not decorative: a one-op tree binds on
  // the single-processor floor; an unplaceable operator reports so; the
  // fractional relaxation labels itself when it dominates.
  {
    const Fixture f = testhelpers::fig1a_fixture(1.0, 10.0);
    const CostLowerBound lb = cost_lower_bound(f.problem());
    EXPECT_TRUE(std::isfinite(lb.value));
  }
  {
    const Fixture f = testhelpers::fig1a_fixture(2.5, 30.0);  // op too heavy
    const CostLowerBound lb = cost_lower_bound(f.problem());
    EXPECT_TRUE(std::isinf(lb.value));
    EXPECT_EQ(lb.binding, "heaviest-operator-unplaceable");
  }
  {
    const Fixture f = testhelpers::fig1a_fixture(1.8, 30.0);
    const CostLowerBound lb = cost_lower_bound(f.problem());
    EXPECT_TRUE(lb.binding == "fractional-packing" ||
                lb.binding == "forced-communication")
        << lb.binding;
  }
}

} // namespace
} // namespace insp
