#include "ilp/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(Bounds, OneProcessorFloor) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_DOUBLE_EQ(lb.value, 7548.0);
  EXPECT_STREQ(lb.binding, "one-processor");
  EXPECT_EQ(processor_count_lower_bound(f.problem()), 1);
}

TEST(Bounds, HeaviestOperatorForcesFasterCpu) {
  // Root mass 270, alpha 1.6 -> w ~ 7.7k Mops > 11.72 GHz cheapest... no:
  // 270^1.6 = e^(1.6*5.598) = e^8.96 ~ 7.8k < 11.72k -> still cheapest.
  // Use alpha 1.8: 270^1.8 ~ 2.4e4 -> needs the 25.60 GHz CPU.
  const Fixture f = fig1a_fixture(1.8, 30.0);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_STREQ(lb.binding, "heaviest-operator");
  EXPECT_DOUBLE_EQ(lb.value, 7548.0 + 2399.0);
}

TEST(Bounds, InfeasibleInstanceGivesInfinity) {
  const Fixture f = fig1a_fixture(2.5, 30.0);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_TRUE(std::isinf(lb.value));
  EXPECT_STREQ(lb.binding, "heaviest-operator-unplaceable");
}

TEST(Bounds, ProcessorCountDrivenByTotalWork) {
  // Many heavy operators: total work 5 * 40k-ish needs >= several fastest
  // CPUs. Craft via work_scale on a fig1a tree is easier with a custom
  // catalog; instead use alpha high but below the per-op cliff.
  Fixture f = fig1a_fixture(1.95, 30.0);
  // Root alone is infeasible at 1.95; use 1.85 where each op fits but the
  // sum exceeds one processor: w(root) = 270^1.85 ~ 3.1e4, total ~ 5e4+.
  f = fig1a_fixture(1.85, 30.0);
  const int nproc = processor_count_lower_bound(f.problem());
  EXPECT_GE(nproc, 2);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_GE(lb.value, nproc * 7548.0);
}

TEST(Bounds, DownloadVolumeDrivesCount) {
  // Large objects: distinct rates 240+480+720 = 1440 MB/s; max NIC 2500:
  // 1 processor suffices by NIC; shrink catalog NIC to force 2.
  Fixture f = fig1a_fixture(0.5, 480.0);
  f.catalog = PriceCatalog(100.0, {{50000.0, 0.0}}, {{1000.0, 0.0}});
  EXPECT_GE(processor_count_lower_bound(f.problem()), 2);
}

TEST(Bounds, LowerBoundNeverExceedsHeuristicCosts) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 30, 1.4);
    const CostLowerBound lb = cost_lower_bound(f.problem());
    for (HeuristicKind k : all_heuristics()) {
      Rng rng(seed);
      const AllocationOutcome out = allocate(f.problem(), k, rng);
      if (out.success) {
        EXPECT_LE(lb.value, out.cost + 1e-9)
            << heuristic_name(k) << " seed " << seed;
      }
    }
  }
}

} // namespace
} // namespace insp
