#include "ilp/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "ilp/exact_solver.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(Bounds, OneProcessorFloor) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_DOUBLE_EQ(lb.value, 7548.0);
  EXPECT_STREQ(lb.binding, "one-processor");
  EXPECT_EQ(processor_count_lower_bound(f.problem()), 1);
}

TEST(Bounds, HeaviestOperatorStillFloorsTheComposite) {
  // Root mass 270, alpha 1.8: w(root) ~ 2.4e4 Mops needs the 25.60 GHz CPU
  // ($9947 with the cheapest NIC) — no composite term may report less.
  const Fixture f = fig1a_fixture(1.8, 30.0);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_GE(lb.value, 7548.0 + 2399.0);
}

TEST(Bounds, FractionalPackingBeatsTheCombinatorialTerms) {
  // Same instance: total work ~46.4k Mops, and the best $/Mops ratio in
  // Table 1 is the fastest CPU (12847 / 46.88 GHz), so the packing LP
  // certifies ~12716 — strictly above the heaviest-operator term (9947)
  // and still at most the true optimum.
  const Fixture f = fig1a_fixture(1.8, 30.0);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_STREQ(lb.binding, "fractional-packing");
  EXPECT_GT(lb.value, 7548.0 + 2399.0);
  const ExactResult r = solve_exact(f.problem());
  ASSERT_EQ(r.status, ExactStatus::Optimal) << r.describe();
  EXPECT_LE(lb.value, *r.cost + 1e-9);
}

TEST(Bounds, FractionalPackingExactOnHomogeneousCatalog) {
  // One configuration: the LP degenerates to scaling it until the binding
  // volume is covered.
  const PriceCatalog cat = PriceCatalog::homogeneous();
  const Dollars cost = 7548.0 + 5299.0 + 5999.0;
  EXPECT_NEAR(fractional_packing_cost(cat, 3.5 * cat.max_speed(), 0.0),
              3.5 * cost, 1e-3);
  EXPECT_NEAR(fractional_packing_cost(cat, 0.0, 2.0 * cat.max_bandwidth()),
              2.0 * cost, 1e-3);
  EXPECT_DOUBLE_EQ(fractional_packing_cost(cat, 0.0, 0.0), 0.0);
}

TEST(Bounds, ForcedCommunicationAppearsWhenWorkCannotFitOneCpu) {
  // alpha 1.85 on fig1a: total work ~6e4 > 46.88k, so the operators span
  // >= 2 processors and at least one deduplicated shipment must cross,
  // charged to both endpoint NICs.
  const Fixture f = fig1a_fixture(1.85, 30.0);
  const MBps forced = forced_communication_volume(f.problem());
  EXPECT_GT(forced, 0.0);
  // One crossing at >= the smallest edge delta in the tree, x2 endpoints.
  MegaBytes min_delta = std::numeric_limits<double>::infinity();
  for (const auto& n : f.tree.operators()) {
    for (const auto& e : n.out) min_delta = std::min(min_delta, e.delta);
  }
  EXPECT_GE(forced, 2.0 * f.rho * min_delta - 1e-9);

  // A one-processor instance forces nothing.
  const Fixture easy = fig1a_fixture(1.0, 10.0);
  EXPECT_DOUBLE_EQ(forced_communication_volume(easy.problem()), 0.0);
}

TEST(Bounds, InfeasibleInstanceGivesInfinity) {
  const Fixture f = fig1a_fixture(2.5, 30.0);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_TRUE(std::isinf(lb.value));
  EXPECT_STREQ(lb.binding, "heaviest-operator-unplaceable");
}

TEST(Bounds, ProcessorCountDrivenByTotalWork) {
  // Many heavy operators: total work 5 * 40k-ish needs >= several fastest
  // CPUs. Craft via work_scale on a fig1a tree is easier with a custom
  // catalog; instead use alpha high but below the per-op cliff.
  Fixture f = fig1a_fixture(1.95, 30.0);
  // Root alone is infeasible at 1.95; use 1.85 where each op fits but the
  // sum exceeds one processor: w(root) = 270^1.85 ~ 3.1e4, total ~ 5e4+.
  f = fig1a_fixture(1.85, 30.0);
  const int nproc = processor_count_lower_bound(f.problem());
  EXPECT_GE(nproc, 2);
  const CostLowerBound lb = cost_lower_bound(f.problem());
  EXPECT_GE(lb.value, nproc * 7548.0);
}

TEST(Bounds, DownloadVolumeDrivesCount) {
  // Large objects: distinct rates 240+480+720 = 1440 MB/s; max NIC 2500:
  // 1 processor suffices by NIC; shrink catalog NIC to force 2.
  Fixture f = fig1a_fixture(0.5, 480.0);
  f.catalog = PriceCatalog(100.0, {{50000.0, 0.0}}, {{1000.0, 0.0}});
  EXPECT_GE(processor_count_lower_bound(f.problem()), 2);
}

TEST(Bounds, LowerBoundNeverExceedsHeuristicCosts) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 30, 1.4);
    const CostLowerBound lb = cost_lower_bound(f.problem());
    for (HeuristicKind k : all_heuristics()) {
      Rng rng(seed);
      const AllocationOutcome out = allocate(f.problem(), k, rng);
      if (out.success) {
        EXPECT_LE(lb.value, out.cost + 1e-9)
            << heuristic_name(k) << " seed " << seed;
      }
    }
  }
}

} // namespace
} // namespace insp
