#include "ilp/exact_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "core/constraints.hpp"
#include "core/server_selection.hpp"
#include "ilp/bounds.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(ExactSolver, EasyInstanceOptimalIsOneCheapestProcessor) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const ExactResult r = solve_exact(f.problem());
  ASSERT_EQ(r.status, ExactStatus::Optimal) << r.describe();
  ASSERT_TRUE(r.cost.has_value());
  EXPECT_DOUBLE_EQ(*r.cost, 7548.0);
  ASSERT_TRUE(r.allocation.has_value());
  EXPECT_EQ(r.allocation->num_processors(), 1);
  EXPECT_TRUE(check_allocation(f.problem(), *r.allocation).ok());
}

TEST(ExactSolver, ImpossibleInstanceIsInfeasible) {
  const Fixture f = fig1a_fixture(2.5, 30.0);
  const ExactResult r = solve_exact(f.problem());
  EXPECT_EQ(r.status, ExactStatus::Infeasible);
  EXPECT_FALSE(r.cost.has_value());
}

TEST(ExactSolver, CpuPressureForcesTwoProcessors) {
  // alpha 1.85 on fig1a: total work > one fastest CPU, each op fits.
  const Fixture f = fig1a_fixture(1.85, 30.0);
  const ExactResult r = solve_exact(f.problem());
  ASSERT_EQ(r.status, ExactStatus::Optimal) << r.describe();
  ASSERT_TRUE(r.allocation.has_value());
  EXPECT_GE(r.allocation->num_processors(), 2);
  EXPECT_TRUE(check_allocation(f.problem(), *r.allocation).ok());
}

TEST(ExactSolver, NeverWorseThanAnyHeuristic) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 8, 1.5);
    const ExactResult r = solve_exact(f.problem());
    if (r.status != ExactStatus::Optimal) continue;
    for (HeuristicKind k : all_heuristics()) {
      Rng rng(seed);
      const AllocationOutcome out = allocate(f.problem(), k, rng);
      if (out.success) {
        EXPECT_LE(*r.cost, out.cost + 1e-6)
            << heuristic_name(k) << " seed " << seed;
      }
    }
  }
}

TEST(ExactSolver, RespectsCostLowerBound) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 8, 1.3);
    const ExactResult r = solve_exact(f.problem());
    if (r.status != ExactStatus::Optimal) continue;
    const CostLowerBound lb = cost_lower_bound(f.problem());
    EXPECT_GE(*r.cost, lb.value - 1e-6) << "seed " << seed;
  }
}

TEST(ExactSolver, HomogeneousCatalogSupported) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.catalog = PriceCatalog::homogeneous();
  const ExactResult r = solve_exact(f.problem());
  ASSERT_EQ(r.status, ExactStatus::Optimal);
  EXPECT_DOUBLE_EQ(*r.cost, 7548.0 + 5299.0 + 5999.0);
  EXPECT_EQ(r.allocation->num_processors(), 1);
}

TEST(ExactSolver, IncumbentSeedPrunesWithoutChangingResult) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  ExactSolverConfig with_seed;
  with_seed.incumbent = 8000.0;  // just above the true optimum
  const ExactResult seeded = solve_exact(f.problem(), with_seed);
  const ExactResult plain = solve_exact(f.problem());
  ASSERT_EQ(seeded.status, ExactStatus::Optimal);
  EXPECT_DOUBLE_EQ(*seeded.cost, *plain.cost);
  EXPECT_LE(seeded.nodes_visited, plain.nodes_visited);
}

TEST(ExactSolver, NodeBudgetReportsExhaustion) {
  const Fixture f = testhelpers::random_fixture(1, 12, 1.6);
  ExactSolverConfig cfg;
  cfg.node_budget = 5;
  cfg.seed_with_heuristics = false;  // force a real descent
  const ExactResult r = solve_exact(f.problem(), cfg);
  EXPECT_EQ(r.status, ExactStatus::BudgetExhausted);
}

TEST(ExactSolver, BudgetExhaustionStillCarriesSeededUpperBound) {
  // With heuristic seeding the incumbent exists before the first node, so
  // even a one-node budget reports a usable upper bound (or proves
  // optimality outright via the root bound and reports that instead).
  const Fixture f = testhelpers::random_fixture(1, 12, 1.6);
  ExactSolverConfig cfg;
  cfg.node_budget = 1;
  const ExactResult r = solve_exact(f.problem(), cfg);
  ASSERT_TRUE(r.status == ExactStatus::BudgetExhausted ||
              r.status == ExactStatus::Optimal)
      << r.describe();
  EXPECT_TRUE(r.cost.has_value());
  EXPECT_TRUE(r.allocation.has_value());
}

TEST(ExactRouter, FindsRoutingWhereThreeLoopSucceeds) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a;
  PurchasedProcessor p;
  p.config = f.catalog.most_expensive();
  p.ops = {0, 1, 2, 3, 4};
  a.processors.push_back(p);
  a.op_to_proc = {0, 0, 0, 0, 0};
  EXPECT_TRUE(route_downloads_exact(f.problem(), a));
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

TEST(ExactRouter, SolvesInstanceTheGreedyRouterCannot) {
  // Type A: rate 10 MB/s, needed by two processors; type B: rate 45 MB/s,
  // needed by one.  Both types hosted by both servers; cards 50 MB/s each.
  // The three-loop heuristic balances the two A downloads across the two
  // servers (headroom rule), leaving 40 MB/s everywhere — too little for B.
  // The only feasible routing packs both A downloads on one server and B on
  // the other; the exact backtracking router must find it.
  ObjectCatalog objects({{0, 20.0, 0.5}, {1, 90.0, 0.5}});  // A=10, B=45
  TreeBuilder b(objects);
  const int op0 = b.add_operator(kNoNode);
  const int op1 = b.add_operator(op0);
  const int op2 = b.add_operator(op1);
  b.add_leaf(op0, 1);  // B
  b.add_leaf(op1, 0);  // A
  b.add_leaf(op2, 0);  // A
  Fixture f{b.build(0.5),
            testhelpers::simple_platform({{0, 1}, {0, 1}}, 2, /*card=*/50.0),
            PriceCatalog::paper_default(), 1.0};
  Allocation a;
  PurchasedProcessor p0, p1, p2;
  p0.config = p1.config = p2.config = f.catalog.most_expensive();
  p0.ops = {0};
  p1.ops = {1};
  p2.ops = {2};
  a.processors = {p0, p1, p2};
  a.op_to_proc = {0, 1, 2};

  // The greedy three-loop fails on this instance ...
  Allocation greedy = a;
  EXPECT_FALSE(select_servers_three_loop(f.problem(), greedy).success);
  // ... while the exact router succeeds and the result validates.
  ASSERT_TRUE(route_downloads_exact(f.problem(), a));
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
  // Both A downloads ended on the same server.
  int a_server[2] = {-1, -1};
  int idx = 0;
  for (std::size_t u = 1; u <= 2; ++u) {
    for (const auto& dl : a.processors[u].downloads) {
      if (dl.object_type == 0) a_server[idx++] = dl.server;
    }
  }
  EXPECT_EQ(a_server[0], a_server[1]);
}

TEST(ExactSolver, MatchesBruteForceOnTinyHeterogeneousInstances) {
  // Cross-check the B&B against an independent brute-force enumeration of
  // partitions for 4-operator trees.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 4, 1.6);
    const Problem prob = f.problem();
    const ExactResult r = solve_exact(prob);

    // Brute force: all assignments of 4 ops onto at most 4 proc slots.
    double best = std::numeric_limits<double>::infinity();
    const int n = f.tree.num_operators();
    std::vector<int> assign(static_cast<std::size_t>(n), 0);
    const int total = static_cast<int>(std::pow(4, n));
    for (int code = 0; code < total; ++code) {
      int c = code;
      int max_pid = 0;
      for (int i = 0; i < n; ++i) {
        assign[static_cast<std::size_t>(i)] = c % 4;
        max_pid = std::max(max_pid, c % 4);
        c /= 4;
      }
      Allocation a;
      a.op_to_proc.assign(static_cast<std::size_t>(n), 0);
      a.processors.resize(static_cast<std::size_t>(max_pid) + 1);
      bool skip = false;
      for (int i = 0; i < n; ++i) {
        a.processors[static_cast<std::size_t>(assign[static_cast<std::size_t>(i)])]
            .ops.push_back(i);
        a.op_to_proc[static_cast<std::size_t>(i)] =
            assign[static_cast<std::size_t>(i)];
      }
      for (auto& pp : a.processors) {
        if (pp.ops.empty()) skip = true;  // only dense partitions
        pp.config = f.catalog.most_expensive();
      }
      if (skip) continue;
      if (!route_downloads_exact(prob, a)) continue;
      const auto loads = compute_processor_loads(prob, a);
      double cost = 0;
      bool ok = true;
      for (std::size_t u = 0; u < a.processors.size(); ++u) {
        const auto cfg = f.catalog.cheapest_meeting(loads[u].cpu_demand,
                                                    loads[u].nic_total());
        if (!cfg) {
          ok = false;
          break;
        }
        a.processors[u].config = *cfg;
        cost += f.catalog.cost(*cfg);
      }
      if (!ok || !check_allocation(prob, a).ok()) continue;
      best = std::min(best, cost);
    }

    if (r.status == ExactStatus::Optimal) {
      ASSERT_TRUE(std::isfinite(best)) << "seed " << seed;
      EXPECT_NEAR(*r.cost, best, 1e-6) << "seed " << seed;
    } else {
      EXPECT_TRUE(std::isinf(best)) << "seed " << seed;
    }
  }
}

} // namespace
} // namespace insp
