#include "ilp/ilp_model.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "../test_helpers.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(IlpModel, HasLpFormatSections) {
  const Fixture f = fig1a_fixture();
  const std::string lp = build_ilp_lp_format(f.problem());
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  // Ends with the LP terminator.
  EXPECT_NE(lp.rfind("End\n"), std::string::npos);
}

TEST(IlpModel, StatsAccounting) {
  const Fixture f = fig1a_fixture();
  IlpModelStats stats;
  IlpModelConfig cfg;
  cfg.num_slots = 3;
  build_ilp_lp_format(f.problem(), cfg, &stats);
  const int N = 5, U = 3, C = 25, E = 4, K = 3;
  // y: U*C; x: N*U; z: E*U*(U-1); need: K*U; d: sum over hosted pairs * U.
  int d_vars = 0;
  for (int k = 0; k < K; ++k) {
    d_vars += static_cast<int>(f.platform.servers_with(k).size()) * U;
  }
  const int expected = U * C + N * U + E * U * (U - 1) + K * U + d_vars;
  EXPECT_EQ(stats.num_variables, expected);
  EXPECT_EQ(stats.num_binaries, expected);
  EXPECT_GT(stats.num_constraints, 0);
}

TEST(IlpModel, DefaultSlotsEqualOperatorCount) {
  const Fixture f = fig1a_fixture();
  const std::string lp = build_ilp_lp_format(f.problem());
  EXPECT_NE(lp.find("slots=5"), std::string::npos);
  // Variable for the last slot exists, none beyond.
  EXPECT_NE(lp.find("x_0_4"), std::string::npos);
  EXPECT_EQ(lp.find("x_0_5"), std::string::npos);
}

TEST(IlpModel, AssignmentRowPerOperator) {
  const Fixture f = fig1a_fixture();
  IlpModelConfig cfg;
  cfg.num_slots = 2;
  const std::string lp = build_ilp_lp_format(f.problem(), cfg);
  // Each operator's assignment row: "x_i_0 + x_i_1 = 1".
  for (int i = 0; i < 5; ++i) {
    std::ostringstream row;
    row << "x_" << i << "_0 + x_" << i << "_1 = 1";
    EXPECT_NE(lp.find(row.str()), std::string::npos) << row.str();
  }
}

TEST(IlpModel, CapacityCoefficientsPresent) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  IlpModelConfig cfg;
  cfg.num_slots = 2;
  const std::string lp = build_ilp_lp_format(f.problem(), cfg);
  // Fastest CPU speed and widest NIC bandwidth appear as y coefficients.
  EXPECT_NE(lp.find("46880"), std::string::npos);
  EXPECT_NE(lp.find("2500"), std::string::npos);
  // Server card capacity (10 GB/s) and link capacities (1 GB/s).
  EXPECT_NE(lp.find("10000"), std::string::npos);
  EXPECT_NE(lp.find("<= 1000"), std::string::npos);
}

TEST(IlpModel, ObjectiveUsesCatalogCosts) {
  const Fixture f = fig1a_fixture();
  const std::string lp = build_ilp_lp_format(f.problem());
  EXPECT_NE(lp.find("7548 y_"), std::string::npos);
  EXPECT_NE(lp.find("18846 y_"), std::string::npos);
}

TEST(IlpModel, GrowsQuadraticallyInSlots) {
  const Fixture f = fig1a_fixture();
  IlpModelStats s2, s4;
  IlpModelConfig cfg;
  cfg.num_slots = 2;
  build_ilp_lp_format(f.problem(), cfg, &s2);
  cfg.num_slots = 4;
  build_ilp_lp_format(f.problem(), cfg, &s4);
  EXPECT_GT(s4.num_variables, s2.num_variables);
  EXPECT_GT(s4.num_constraints, s2.num_constraints);
  // z variables grow ~U^2: 4 edges * 4*3 vs 4 edges * 2*1.
  EXPECT_GE(s4.num_variables - s2.num_variables, 4 * (12 - 2));
}

TEST(IlpModel, CommentHeaderDocumentsInstance) {
  const Fixture f = fig1a_fixture();
  const std::string lp = build_ilp_lp_format(f.problem());
  EXPECT_NE(lp.find("\\ CINSP operator-placement ILP"), std::string::npos);
  EXPECT_NE(lp.find("operators=5"), std::string::npos);
  EXPECT_NE(lp.find("rho=1"), std::string::npos);
}

} // namespace
} // namespace insp
