#include "bench_support/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bench_support/reporting.hpp"

namespace insp {
namespace {

InstanceConfig tiny_cfg(double n) {
  InstanceConfig cfg;
  cfg.tree.num_operators = static_cast<int>(n);
  cfg.tree.alpha = 1.0;
  cfg.servers.num_servers = 6;
  return cfg;
}

TEST(ExperimentHarness, MakeInstanceDeterministic) {
  const InstanceConfig cfg = tiny_cfg(20);
  const Instance a = make_instance(7, cfg);
  const Instance b = make_instance(7, cfg);
  EXPECT_EQ(a.tree().num_operators(), b.tree().num_operators());
  for (int i = 0; i < a.tree().num_operators(); ++i) {
    EXPECT_EQ(a.tree().op(i).parent(), b.tree().op(i).parent());
  }
  for (int l = 0; l < a.platform().num_servers(); ++l) {
    EXPECT_EQ(a.platform().server(l).object_types,
              b.platform().server(l).object_types);
  }
  const Instance c = make_instance(8, cfg);
  bool differs = c.tree().num_leaves() != a.tree().num_leaves();
  for (int i = 0; !differs && i < a.tree().num_operators(); ++i) {
    differs = a.tree().op(i).parent() != c.tree().op(i).parent();
  }
  EXPECT_TRUE(differs);
}

TEST(ExperimentHarness, ProblemPointsIntoInstance) {
  const Instance inst = make_instance(1, tiny_cfg(10));
  const Problem p = inst.problem();
  ASSERT_TRUE(p.valid());
  EXPECT_EQ(p.tree, &inst.tree());
  EXPECT_EQ(p.platform, &inst.platform());
}

TEST(ExperimentHarness, HomogeneousFlagSwitchesCatalog) {
  InstanceConfig cfg = tiny_cfg(10);
  cfg.homogeneous_catalog = true;
  const Instance inst = make_instance(1, cfg);
  EXPECT_TRUE(inst.catalog().is_homogeneous());
}

TEST(ExperimentHarness, SweepShapesAndCounts) {
  SweepSpec spec;
  spec.x_name = "N";
  spec.xs = {5, 10};
  spec.repetitions = 3;
  spec.config_for = tiny_cfg;
  spec.heuristics = {HeuristicKind::SubtreeBottomUp, HeuristicKind::Random};
  const SweepResult r = run_sweep(spec);
  ASSERT_EQ(r.xs.size(), 2u);
  ASSERT_EQ(r.heuristics.size(), 2u);
  for (HeuristicKind h : r.heuristics) {
    ASSERT_EQ(r.cells.at(h).size(), 2u);
    for (const auto& cell : r.cells.at(h)) {
      EXPECT_EQ(cell.attempts, 3);
      EXPECT_EQ(cell.failures + static_cast<int>(cell.cost.count()), 3);
    }
  }
}

TEST(ExperimentHarness, SweepDefaultsToAllHeuristics) {
  SweepSpec spec;
  spec.xs = {5};
  spec.repetitions = 1;
  spec.config_for = tiny_cfg;
  const SweepResult r = run_sweep(spec);
  EXPECT_EQ(r.heuristics.size(), 6u);
}

TEST(ExperimentHarness, SweepDeterministicGivenSeed) {
  SweepSpec spec;
  spec.xs = {8};
  spec.repetitions = 2;
  spec.config_for = tiny_cfg;
  spec.heuristics = {HeuristicKind::CompGreedy};
  const SweepResult a = run_sweep(spec);
  const SweepResult b = run_sweep(spec);
  EXPECT_DOUBLE_EQ(a.cells.at(HeuristicKind::CompGreedy)[0].cost.mean(),
                   b.cells.at(HeuristicKind::CompGreedy)[0].cost.mean());
}

TEST(Reporting, TablesContainHeuristicNamesAndValues) {
  SweepSpec spec;
  spec.x_name = "N";
  spec.xs = {6};
  spec.repetitions = 2;
  spec.config_for = tiny_cfg;
  spec.heuristics = {HeuristicKind::SubtreeBottomUp};
  const SweepResult r = run_sweep(spec);
  const std::string cost = format_cost_table(r);
  EXPECT_NE(cost.find("Subtree-bottom-up"), std::string::npos);
  EXPECT_NE(cost.find("N"), std::string::npos);
  const std::string procs = format_processor_table(r);
  EXPECT_NE(procs.find("1.0"), std::string::npos);
  const std::string fails = format_failure_table(r);
  EXPECT_NE(fails.find("0%"), std::string::npos);
  const std::string chart = format_cost_chart(r, "t");
  EXPECT_NE(chart.find("S=Subtree-bottom-up"), std::string::npos);
}

TEST(Reporting, CsvDumpHasHeaderAndRows) {
  SweepSpec spec;
  spec.xs = {6};
  spec.repetitions = 1;
  spec.config_for = tiny_cfg;
  spec.heuristics = {HeuristicKind::Random, HeuristicKind::CompGreedy};
  const SweepResult r = run_sweep(spec);
  const std::string path = testing::TempDir() + "/cinsp_sweep_test.csv";
  write_sweep_csv(r, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "x,heuristic,attempts,failures,mean_cost,stddev_cost,"
            "mean_processors");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);
  std::remove(path.c_str());
}

TEST(Reporting, MarkersAreUniquePerHeuristic) {
  std::set<char> markers;
  for (HeuristicKind h : all_heuristics()) {
    markers.insert(heuristic_marker(h));
  }
  EXPECT_EQ(markers.size(), 6u);
}

} // namespace
} // namespace insp
