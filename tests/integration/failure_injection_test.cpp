// Failure injection: every component must fail *cleanly* (reported reason,
// untouched/valid state) when its environment is broken — unhosted objects,
// starved servers, impossible targets, degenerate catalogs.
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "ilp/exact_solver.hpp"
#include "multi/multi_app.hpp"
#include "sim/flow_analyzer.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;
using testhelpers::fig1a_tree;
using testhelpers::simple_platform;

TEST(FailureInjection, UnhostedObjectTypeFailsEveryHeuristic) {
  Fixture f = fig1a_fixture();
  f.platform = simple_platform({{0, 1}}, 3);  // o2 hosted nowhere
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(1);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    EXPECT_FALSE(out.success) << heuristic_name(k);
    EXPECT_NE(out.failure_reason.find("server-selection"), std::string::npos)
        << heuristic_name(k) << ": " << out.failure_reason;
  }
}

TEST(FailureInjection, StarvedServerCardsFailInSelectionNotValidation) {
  Fixture f = fig1a_fixture(1.0, 480.0);  // heavy downloads
  f.platform = simple_platform({{0, 1, 2}, {0, 1, 2}}, 3, /*card=*/100.0);
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(1);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    EXPECT_FALSE(out.success) << heuristic_name(k);
    // The pipeline reports the failing phase, never an invalid plan.
    EXPECT_EQ(out.failure_reason.find("validation"), std::string::npos)
        << heuristic_name(k) << ": " << out.failure_reason;
  }
}

TEST(FailureInjection, ImpossibleThroughputTarget) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.rho = 1e6;  // CPU demand explodes
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(1);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    EXPECT_FALSE(out.success) << heuristic_name(k);
    EXPECT_NE(out.failure_reason.find("placement"), std::string::npos)
        << heuristic_name(k);
  }
}

TEST(FailureInjection, ExactSolverAgreesInstancesAreInfeasible) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.rho = 1e6;
  const ExactResult r = solve_exact(f.problem());
  EXPECT_EQ(r.status, ExactStatus::Infeasible);
}

TEST(FailureInjection, TinyCatalogDegradesGracefully) {
  // A single weak model: heuristics must either fit everything on copies of
  // it or fail with a placement reason.
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.catalog = PriceCatalog(500.0, {{100.0, 0.0}}, {{50.0, 0.0}});
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(1);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    if (out.success) {
      // Valid by construction; the checker already ran inside allocate().
      EXPECT_GT(out.num_processors, 1) << heuristic_name(k);
    } else {
      EXPECT_FALSE(out.failure_reason.empty());
    }
  }
}

TEST(FailureInjection, ZeroCommBudgetForcesSingleProcessorOrFailure) {
  // Proc-proc links of ~zero capacity: any crossing edge is impossible, so
  // plans are single-processor or placement fails.
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.platform = simple_platform({{0, 1, 2}}, 3, 10000.0, 1000.0,
                               /*link_pp=*/1e-9);
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(1);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    if (out.success) {
      EXPECT_EQ(out.num_processors, 1) << heuristic_name(k);
    }
  }
}

TEST(FailureInjection, FlowAnalyzerFlagsBrokenPlansNotBuiltByPipeline) {
  // Hand-build an overloaded allocation and confirm the analyzer reports
  // zero sustainable throughput rather than crashing.
  const Fixture f = fig1a_fixture(1.0, 480.0);
  Allocation a;
  PurchasedProcessor p;
  p.config = f.catalog.cheapest();  // 125 MB/s NIC vs ~720 MB/s downloads
  p.ops = {0, 1, 2, 3, 4};
  p.downloads = {{0, 0}, {1, 0}, {2, 0}};
  a.processors.push_back(p);
  a.op_to_proc = {0, 0, 0, 0, 0};
  const FlowAnalysis flow = analyze_flow(f.problem(), a);
  EXPECT_FALSE(flow.downloads_feasible);
  EXPECT_DOUBLE_EQ(flow.max_throughput, 0.0);
}

TEST(FailureInjection, MultiAppPropagatesPerAppFailures) {
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 1e6});  // impossible target
  const Platform platform = simple_platform({{0, 1, 2}}, 3);
  const PriceCatalog catalog = PriceCatalog::paper_default();
  const CombinedApplication combined = combine_applications(apps);
  Rng rng(1);
  const AllocationOutcome joint = allocate_joint(
      combined, platform, catalog, HeuristicKind::CompGreedy, rng);
  EXPECT_FALSE(joint.success);
}

TEST(FailureInjection, LeafOnlyPlatformHandlesReplicationExtremes) {
  // replication_prob = 0 leaves every object on one server; selection must
  // still respect per-link limits when one server hosts everything.
  Fixture f = fig1a_fixture(1.0, 100.0);  // rates 50/100/150 MB/s
  f.platform = simple_platform({{0, 1, 2}}, 3, /*card=*/10000.0,
                               /*link_sp=*/250.0);
  // One proc would need 300 MB/s over a single 250 MB/s link -> the
  // heuristics must split downloads across processors or fail cleanly.
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(1);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    if (out.success) {
      EXPECT_GE(out.num_processors, 2) << heuristic_name(k);
    } else {
      EXPECT_FALSE(out.failure_reason.empty());
    }
  }
}

} // namespace
} // namespace insp
