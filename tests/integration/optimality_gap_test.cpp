// End-to-end optimality-gap accounting (docs/DESIGN.md §14): the measured
// heuristic gaps at paper sizes stay under pinned per-heuristic ceilings,
// and on seeded dynamic traces the repair engine's per-event gap to the
// PROVED optimum never falls behind the from-scratch baseline's — the
// claim that incremental repair is cheaper AND better than re-running the
// static pipeline, now anchored to exact optima instead of to itself.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "../test_helpers.hpp"
#include "bench_support/gap_study.hpp"
#include "core/allocator.hpp"
#include "report/optimality_gap.hpp"

namespace insp {
namespace {

using benchx::DynamicWorld;
using benchx::GapEventSample;
using benchx::GapStudyResult;
using benchx::make_dynamic_world;
using benchx::run_gap_study;
using testhelpers::Fixture;
using testhelpers::random_fixture;

TEST(OptimalityGap, MeasuredOnlyAgainstProvedOptimum) {
  const Fixture f = testhelpers::fig1a_fixture(1.0, 10.0);
  const OptimalityGap g = measure_gap(f.problem(), 7548.0);
  ASSERT_TRUE(g.measured());
  EXPECT_DOUBLE_EQ(g.ratio(), 1.0);
  EXPECT_NEAR(g.percent(), 0.0, 1e-9);

  // A budget too small to prove optimality must yield an unmeasured gap —
  // never a ratio against an unproved incumbent.
  ExactSolverConfig starved;
  starved.node_budget = 1;
  starved.seed_with_heuristics = false;
  const Fixture hard = random_fixture(1, 12, 1.6);
  const OptimalityGap unproved =
      measure_gap(hard.problem(), 10000.0, starved);
  EXPECT_FALSE(unproved.measured());
  EXPECT_TRUE(std::isnan(unproved.ratio()));
}

TEST(OptimalityGap, HeuristicGapsStayUnderPinnedCeilings) {
  // Worst measured ratios over these exact seeds (see bench_ablations
  // section (e) for the full table): SBU and Comp-Greedy are optimal on
  // every instance, Comm-Greedy peaks at 3.32x, Object-Grouping at 6.11x,
  // Object-Availability at 8.26x, Random at 18.11x.  Ceilings pin those
  // plateaus with a small margin so only a genuine regression — a
  // heuristic getting worse, or the exact anchor drifting — trips them.
  const std::map<std::string, double> ceilings = {
      {"Subtree-bottom-up", 1.000001},   //
      {"Comp-Greedy", 1.000001},         //
      {"Comm-Greedy", 3.5},              //
      {"Object-Grouping", 6.5},          //
      {"Object-Availability", 8.75},     //
      {"Random", 19.0},                  //
  };
  int measured = 0;
  for (double alpha : {0.9, 1.7}) {
    for (int n : {10, 20}) {
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const Fixture f = random_fixture(seed, n, alpha);
        const Problem prob = f.problem();
        for (HeuristicKind h : all_heuristics()) {
          Rng rng(seed);
          const AllocationOutcome out = allocate(prob, h, rng);
          if (!out.success) continue;
          const OptimalityGap gap = measure_gap(prob, out.cost);
          ASSERT_TRUE(gap.measured())
              << heuristic_name(h) << " n=" << n << " alpha=" << alpha
              << " seed=" << seed << " anchor unproved";
          ++measured;
          // A feasible cost can never undercut a proved optimum.
          EXPECT_GE(gap.ratio(), 1.0 - 1e-9)
              << heuristic_name(h) << " n=" << n << " seed=" << seed;
          EXPECT_LE(gap.ratio(), ceilings.at(heuristic_name(h)))
              << heuristic_name(h) << " n=" << n << " alpha=" << alpha
              << " seed=" << seed;
        }
      }
    }
  }
  EXPECT_GE(measured, 100);  // the sweep really ran
}

TEST(OptimalityGap, RepairGapNeverWorseThanScratchAcrossSeededTraces) {
  // Five seeded dynamic traces at gap-anchor scale: every post-event
  // folded problem is solved to proved optimality, and the incremental
  // repair engine's mean gap stays at or below the always-from-scratch
  // baseline's on every trace.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const DynamicWorld world = make_dynamic_world(seed, {16, 2, 24});
    const GapStudyResult g = run_gap_study(world, seed);
    ASSERT_GT(g.events_measured, 0) << "seed " << seed;
    EXPECT_EQ(g.events_measured, g.events_comparable)
        << "seed " << seed << ": some anchors ran out of budget";
    EXPECT_EQ(g.repair_failures, 0) << "seed " << seed;
    EXPECT_EQ(g.scratch_failures, 0) << "seed " << seed;
    for (const GapEventSample& s : g.samples) {
      if (!s.measured) continue;
      // Both engines produced feasible allocations: neither may beat the
      // proved optimum.
      EXPECT_GE(s.repair_ratio, 1.0 - 1e-9)
          << "seed " << seed << " event " << s.event_index;
      EXPECT_GE(s.scratch_ratio, 1.0 - 1e-9)
          << "seed " << seed << " event " << s.event_index;
    }
    EXPECT_LE(g.repair_gap_mean, g.scratch_gap_mean + 1e-9)
        << "seed " << seed;
    EXPECT_LE(g.repair_gap_max, g.scratch_gap_max + 1e-9)
        << "seed " << seed;
  }
}

} // namespace
} // namespace insp
