// Shape-level regression tests pinning the paper's qualitative findings
// (the bench binaries print the full figures; these tests keep the claims
// true as the code evolves).  Small repetition counts keep them fast.
#include <gtest/gtest.h>

#include "bench_support/experiment.hpp"
#include "ilp/exact_solver.hpp"

namespace insp {
namespace {

InstanceConfig paper_cfg(int n, double alpha) {
  InstanceConfig cfg;
  cfg.tree.num_operators = n;
  cfg.tree.alpha = alpha;
  cfg.tree.num_object_types = 15;
  cfg.tree.object_size_lo = 5.0;
  cfg.tree.object_size_hi = 30.0;
  cfg.tree.download_freq = 0.5;
  cfg.tree.at_most_n = true;
  cfg.servers.num_servers = 6;
  return cfg;
}

double mean_cost_over_seeds(const InstanceConfig& cfg, HeuristicKind k,
                            int reps, int* failures = nullptr) {
  SampleSet costs;
  int fails = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const Instance inst = make_instance(1000 + rep, cfg);
    Rng rng(55 + rep);
    const AllocationOutcome out = allocate(inst.problem(), k, rng);
    if (out.success) {
      costs.add(out.cost);
    } else {
      ++fails;
    }
  }
  if (failures) *failures = fails;
  return costs.empty() ? -1.0 : costs.mean();
}

TEST(PaperShape, RandomPerformsPoorly) {
  // Paper §5: "As expected, Random performs poorly."
  const InstanceConfig cfg = paper_cfg(60, 0.9);
  const double random = mean_cost_over_seeds(cfg, HeuristicKind::Random, 6);
  const double sbu =
      mean_cost_over_seeds(cfg, HeuristicKind::SubtreeBottomUp, 6);
  ASSERT_GT(random, 0);
  ASSERT_GT(sbu, 0);
  EXPECT_GT(random, 3.0 * sbu);
}

TEST(PaperShape, SubtreeBottomUpBeatsObjectHeuristics) {
  // Paper ranking: SBU, Greedy family, Object-Grouping, Object-
  // Availability, Random.
  const InstanceConfig cfg = paper_cfg(60, 0.9);
  const double sbu =
      mean_cost_over_seeds(cfg, HeuristicKind::SubtreeBottomUp, 6);
  const double og =
      mean_cost_over_seeds(cfg, HeuristicKind::ObjectGrouping, 6);
  const double oa =
      mean_cost_over_seeds(cfg, HeuristicKind::ObjectAvailability, 6);
  const double random = mean_cost_over_seeds(cfg, HeuristicKind::Random, 6);
  EXPECT_LT(sbu, og);
  EXPECT_LT(og, oa);
  EXPECT_LT(oa, random);
}

TEST(PaperShape, SubtreeBottomUpAtMostGreedyFamily) {
  const InstanceConfig cfg = paper_cfg(60, 0.9);
  const double sbu =
      mean_cost_over_seeds(cfg, HeuristicKind::SubtreeBottomUp, 6);
  const double comp =
      mean_cost_over_seeds(cfg, HeuristicKind::CompGreedy, 6);
  const double comm =
      mean_cost_over_seeds(cfg, HeuristicKind::CommGreedy, 6);
  EXPECT_LE(sbu, comp * 1.05);
  EXPECT_LE(sbu, comm * 1.05);
}

TEST(PaperShape, AlphaCliffAtN60LiesNear1p8) {
  // Fig 3: no solutions past alpha ~1.8-2.0 for N = 60; plenty at 1.0.
  int fails_low = 0, fails_high = 0;
  mean_cost_over_seeds(paper_cfg(60, 1.0), HeuristicKind::CompGreedy, 6,
                       &fails_low);
  mean_cost_over_seeds(paper_cfg(60, 2.1), HeuristicKind::CompGreedy, 6,
                       &fails_high);
  EXPECT_EQ(fails_low, 0);
  EXPECT_EQ(fails_high, 6);
}

TEST(PaperShape, AlphaCliffAtN20LiesNear2p2) {
  int fails_mid = 0, fails_high = 0;
  mean_cost_over_seeds(paper_cfg(20, 1.8), HeuristicKind::CompGreedy, 6,
                       &fails_mid);
  mean_cost_over_seeds(paper_cfg(20, 2.5), HeuristicKind::CompGreedy, 6,
                       &fails_high);
  // Feasible well past the N=60 cliff, dead by 2.5.
  EXPECT_LE(fails_mid, 2);
  EXPECT_EQ(fails_high, 6);
}

TEST(PaperShape, CostRisesWithAlphaBeforeTheCliff) {
  // Fig 3: flat region then growth.
  const double flat =
      mean_cost_over_seeds(paper_cfg(60, 0.9), HeuristicKind::CompGreedy, 6);
  const double steep =
      mean_cost_over_seeds(paper_cfg(60, 1.7), HeuristicKind::CompGreedy, 6);
  ASSERT_GT(flat, 0);
  ASSERT_GT(steep, 0);
  EXPECT_GT(steep, 2.0 * flat);
}

TEST(PaperShape, LargeObjectsInfeasibleBeyond45Nodes) {
  InstanceConfig cfg = paper_cfg(60, 0.9);
  cfg.tree.object_size_lo = 450.0;
  cfg.tree.object_size_hi = 530.0;
  int fails = 0;
  mean_cost_over_seeds(cfg, HeuristicKind::SubtreeBottomUp, 6, &fails);
  EXPECT_GE(fails, 5);  // nearly always infeasible at N = 60

  InstanceConfig small = cfg;
  small.tree.num_operators = 15;
  int fails_small = 0;
  mean_cost_over_seeds(small, HeuristicKind::SubtreeBottomUp, 6,
                       &fails_small);
  EXPECT_LE(fails_small, 2);  // mostly feasible at N = 15
}

TEST(PaperShape, LowFrequencyNeverCostsMore) {
  // §5: low frequencies lead to the same mappings with cheaper NICs.
  InstanceConfig high = paper_cfg(60, 0.9);
  InstanceConfig low = high;
  low.tree.download_freq = 0.02;
  for (HeuristicKind k :
       {HeuristicKind::SubtreeBottomUp, HeuristicKind::CompGreedy}) {
    const double c_high = mean_cost_over_seeds(high, k, 6);
    const double c_low = mean_cost_over_seeds(low, k, 6);
    ASSERT_GT(c_high, 0);
    ASSERT_GT(c_low, 0);
    EXPECT_LE(c_low, c_high + 1e-9) << heuristic_name(k);
  }
}

TEST(PaperShape, FrequenciesBelowOneTenthChangeNothing) {
  // §5: "frequencies smaller than 1/10s have no further influence".
  InstanceConfig f10 = paper_cfg(40, 0.9);
  f10.tree.download_freq = 0.1;
  InstanceConfig f50 = f10;
  f50.tree.download_freq = 0.02;
  const double c10 =
      mean_cost_over_seeds(f10, HeuristicKind::SubtreeBottomUp, 6);
  const double c50 =
      mean_cost_over_seeds(f50, HeuristicKind::SubtreeBottomUp, 6);
  EXPECT_DOUBLE_EQ(c10, c50);
}

TEST(PaperShape, ExactOptimumIsSingleProcessorOnSmallTrees) {
  // §5: "For trees with 20 operators, Cplex returns the optimal solution,
  // which consists in all cases in buying a single processor."  Our exact
  // solver reproduces this on solver-sized instances.
  for (int rep = 0; rep < 3; ++rep) {
    InstanceConfig cfg = paper_cfg(10, 0.9);
    cfg.tree.at_most_n = false;
    const Instance inst = make_instance(2000 + rep, cfg);
    const ExactResult r = solve_exact(inst.problem());
    ASSERT_EQ(r.status, ExactStatus::Optimal) << r.describe();
    EXPECT_EQ(r.allocation->num_processors(), 1);
  }
}

TEST(PaperShape, SubtreeBottomUpNearOptimalHomogeneous) {
  // §5 homogeneous study: SBU finds the optimum in most cases.
  int optimal_hits = 0, solved = 0;
  for (int rep = 0; rep < 5; ++rep) {
    InstanceConfig cfg = paper_cfg(8, 1.3);
    cfg.tree.at_most_n = false;
    cfg.homogeneous_catalog = true;
    const Instance inst = make_instance(3000 + rep, cfg);
    const ExactResult r = solve_exact(inst.problem());
    if (r.status != ExactStatus::Optimal) continue;
    ++solved;
    Rng rng(1);
    AllocatorOptions opts;
    opts.downgrade = false;  // paper skips downgrading here
    const AllocationOutcome out =
        allocate(inst.problem(), HeuristicKind::SubtreeBottomUp, rng, opts);
    if (out.success && out.cost <= *r.cost * 1.0001) ++optimal_hits;
  }
  ASSERT_GT(solved, 0);
  EXPECT_GE(optimal_hits * 2, solved);  // optimal in most cases
}

} // namespace
} // namespace insp
