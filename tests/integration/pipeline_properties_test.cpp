// Property suite over random paper-style instances: every heuristic's
// successful output must satisfy a battery of invariants, cross-checked by
// three independent implementations (constraint checker, flow analyzer,
// event simulator).
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "core/constraints.hpp"
#include "ilp/bounds.hpp"
#include "ilp/exact_solver.hpp"
#include "sim/event_sim.hpp"
#include "sim/flow_analyzer.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;

struct PropertyCase {
  std::uint64_t seed;
  int n_ops;
  double alpha;
  MegaBytes size_lo, size_hi;
};

class PipelineProperty
    : public testing::TestWithParam<std::tuple<PropertyCase, HeuristicKind>> {
};

TEST_P(PipelineProperty, SuccessfulAllocationsSatisfyAllInvariants) {
  const auto [pc, kind] = GetParam();
  const Fixture f =
      testhelpers::random_fixture(pc.seed, pc.n_ops, pc.alpha, pc.size_lo,
                                  pc.size_hi);
  const Problem prob = f.problem();
  Rng rng(pc.seed * 31 + 7);
  const AllocationOutcome out = allocate(prob, kind, rng);
  if (!out.success) {
    // Failure must carry a reason; nothing else to check.
    EXPECT_FALSE(out.failure_reason.empty());
    return;
  }

  // (1) The checker (independent recomputation) accepts the plan.
  const CheckReport report = check_allocation(prob, out.allocation);
  EXPECT_TRUE(report.ok()) << heuristic_name(kind) << "\n" << report.summary();

  // (2) Cost accounting is consistent and bounded below.
  EXPECT_DOUBLE_EQ(out.cost, out.allocation.total_cost(f.catalog));
  EXPECT_LE(out.cost, out.cost_before_downgrade + 1e-9);
  EXPECT_GE(out.cost + 1e-9, cost_lower_bound(prob).value);

  // (3) Structure: every operator exactly once, processors non-empty.
  std::vector<int> seen(static_cast<std::size_t>(f.tree.num_operators()), 0);
  for (const auto& p : out.allocation.processors) {
    EXPECT_FALSE(p.ops.empty());
    for (int op : p.ops) ++seen[static_cast<std::size_t>(op)];
  }
  for (int c : seen) EXPECT_EQ(c, 1);

  // (4) The fluid analysis certifies the target throughput.
  const FlowAnalysis flow = analyze_flow(prob, out.allocation);
  EXPECT_TRUE(flow.downloads_feasible);
  EXPECT_GE(flow.max_throughput, prob.rho - 1e-6);

  // (5) The event simulator sustains the target.
  const EventSimResult sim = simulate_allocation(prob, out.allocation);
  EXPECT_TRUE(sim.sustained)
      << heuristic_name(kind) << " achieved " << sim.achieved_throughput;
}

std::vector<PropertyCase> property_cases() {
  return {
      {1, 10, 0.9, 5.0, 30.0},    {2, 25, 0.9, 5.0, 30.0},
      {3, 40, 1.3, 5.0, 30.0},    {4, 60, 1.5, 5.0, 30.0},
      {5, 60, 1.7, 5.0, 30.0},    {6, 15, 0.9, 450.0, 530.0},
      {7, 30, 0.9, 450.0, 530.0}, {8, 80, 1.1, 5.0, 30.0},
  };
}

std::string property_case_name(
    const testing::TestParamInfo<std::tuple<PropertyCase, HeuristicKind>>&
        info) {
  std::string name = heuristic_name(std::get<1>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return "seed" + std::to_string(std::get<0>(info.param).seed) + "_" + name;
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, PipelineProperty,
    testing::Combine(testing::ValuesIn(property_cases()),
                     testing::ValuesIn(all_heuristics())),
    property_case_name);

TEST(PipelineDeterminism, IdenticalAcrossRepeatedRuns) {
  const Fixture f = testhelpers::random_fixture(99, 35, 1.2);
  for (HeuristicKind k : all_heuristics()) {
    Rng r1(7), r2(7);
    const AllocationOutcome a = allocate(f.problem(), k, r1);
    const AllocationOutcome b = allocate(f.problem(), k, r2);
    ASSERT_EQ(a.success, b.success);
    if (a.success) {
      EXPECT_EQ(a.allocation.op_to_proc, b.allocation.op_to_proc);
      EXPECT_DOUBLE_EQ(a.cost, b.cost);
      // Downloads identical too.
      for (std::size_t u = 0; u < a.allocation.processors.size(); ++u) {
        EXPECT_EQ(a.allocation.processors[u].downloads,
                  b.allocation.processors[u].downloads);
      }
    }
  }
}

TEST(PipelineRho, OptimalCostMonotoneInTarget) {
  // The feasible set shrinks as rho grows, so the *optimal* cost is
  // monotone non-decreasing (heuristics need not be — they may land in
  // different local structures).
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Fixture f = testhelpers::random_fixture(seed, 7, 1.5);
    const ExactResult at1 = solve_exact(f.problem());
    f.rho = 2.0;
    const ExactResult at2 = solve_exact(f.problem());
    if (at1.status != ExactStatus::Optimal) continue;
    if (at2.status == ExactStatus::Optimal) {
      EXPECT_GE(*at2.cost + 1e-9, *at1.cost) << "seed " << seed;
    }
    // Infeasible at the higher target is also consistent with monotonicity.
  }
}

TEST(PipelineLeftDeep, HandlesChainTopologies) {
  Rng gen(3);
  TreeGenConfig cfg;
  cfg.num_operators = 20;
  cfg.alpha = 1.0;
  OperatorTree tree = generate_left_deep_tree(gen, cfg);
  ServerDistConfig dist;
  Platform platform = make_paper_platform(gen, dist);
  Fixture f{std::move(tree), std::move(platform),
            PriceCatalog::paper_default(), 1.0};
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(11);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    ASSERT_TRUE(out.success) << heuristic_name(k) << ": "
                             << out.failure_reason;
    EXPECT_TRUE(check_allocation(f.problem(), out.allocation).ok());
  }
}

TEST(PipelineSingleOp, DegenerateTreeWorks) {
  ObjectCatalog objects({{0, 10.0, 0.5}});
  TreeBuilder b(objects);
  const int op = b.add_operator(kNoNode);
  b.add_leaf(op, 0);
  Fixture f{b.build(1.0), testhelpers::simple_platform({{0}}, 1),
            PriceCatalog::paper_default(), 1.0};
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(1);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    ASSERT_TRUE(out.success) << heuristic_name(k);
    EXPECT_EQ(out.num_processors, 1);
    EXPECT_DOUBLE_EQ(out.cost, 7548.0);
  }
}

} // namespace
} // namespace insp
