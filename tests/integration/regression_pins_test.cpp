// Regression pins: exact end-to-end outputs for fixed seeds.  The
// (seed, config) -> instance mapping and every heuristic are fully
// deterministic, so these values must never drift silently — any
// intentional behavior change has to update them consciously.
#include <gtest/gtest.h>

#include <map>

#include "bench_support/experiment.hpp"

namespace insp {
namespace {

InstanceConfig pinned_cfg(int n, double alpha) {
  InstanceConfig cfg;
  cfg.tree.num_operators = n;
  cfg.tree.alpha = alpha;
  cfg.tree.num_object_types = 15;
  cfg.tree.object_size_lo = 5.0;
  cfg.tree.object_size_hi = 30.0;
  cfg.tree.download_freq = 0.5;
  cfg.servers.num_servers = 6;
  return cfg;
}

struct Pin {
  HeuristicKind heuristic;
  double cost;
  int processors;
};

TEST(RegressionPins, InstanceShapeSeed424242) {
  const Instance inst = make_instance(424242, pinned_cfg(40, 1.3));
  EXPECT_EQ(inst.tree().num_operators(), 40);
  EXPECT_EQ(inst.tree().num_leaves(), 20);
  const auto& root = inst.tree().op(inst.tree().root());
  EXPECT_NEAR(root.output_mb, 378.3585396806, 1e-6);
  EXPECT_NEAR(root.work, 2245.3011705123, 1e-6);
}

TEST(RegressionPins, AllHeuristicsSeed424242) {
  const Instance inst = make_instance(424242, pinned_cfg(40, 1.3));
  const Problem prob = inst.problem();

  // Pinned outcomes (cost, processor count) for rng seed 7.
  const std::map<HeuristicKind, Pin> pins = {
      {HeuristicKind::Random, {HeuristicKind::Random, 192245.0, 25}},
      {HeuristicKind::CompGreedy, {HeuristicKind::CompGreedy, 9098.0, 1}},
      {HeuristicKind::CommGreedy, {HeuristicKind::CommGreedy, 17444.0, 2}},
      {HeuristicKind::SubtreeBottomUp,
       {HeuristicKind::SubtreeBottomUp, 9098.0, 1}},
      {HeuristicKind::ObjectGrouping,
       {HeuristicKind::ObjectGrouping, 33737.0, 4}},
      {HeuristicKind::ObjectAvailability,
       {HeuristicKind::ObjectAvailability, 73080.0, 9}},
  };

  for (HeuristicKind k : all_heuristics()) {
    Rng rng(7);
    const AllocationOutcome out = allocate(prob, k, rng);
    ASSERT_TRUE(out.success) << heuristic_name(k) << ": "
                             << out.failure_reason;
    const auto it = pins.find(k);
    ASSERT_NE(it, pins.end());
    EXPECT_NEAR(out.cost, it->second.cost, 0.5)
        << heuristic_name(k) << " cost drifted (got " << out.cost << ")";
    EXPECT_EQ(out.num_processors, it->second.processors)
        << heuristic_name(k) << " processor count drifted";
  }
}

TEST(RegressionPins, HighAlphaSeed99InstanceIsInfeasible) {
  // seed 99 at (N=60, alpha=1.7) draws a tree whose root operator exceeds
  // every CPU: pinned as a failure (the paper's feasibility cliff).
  const Instance inst = make_instance(99, pinned_cfg(60, 1.7));
  Rng rng(3);
  const AllocationOutcome out =
      allocate(inst.problem(), HeuristicKind::CompGreedy, rng);
  ASSERT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("placement"), std::string::npos);
}

TEST(RegressionPins, HighAlphaSeed100Feasible) {
  const Instance inst = make_instance(100, pinned_cfg(60, 1.7));
  Rng rng(3);
  const AllocationOutcome out =
      allocate(inst.problem(), HeuristicKind::CompGreedy, rng);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_NEAR(out.cost, 67636.0, 0.5) << "got " << out.cost;
  EXPECT_EQ(out.num_processors, 4);
}

} // namespace
} // namespace insp
