// Golden-signature regression: the seed-42 smoke replay signatures of
// bench_dynamic and bench_service are pinned in
// tests/golden/replay_signatures.txt, so any change that silently shifts a
// repair trajectory — world generation, trace generation, repair policy,
// batching/coalescing rules, signature mixing — fails ctest instead of
// only being noticeable in bench output.  When a drift is *intentional*
// (a deliberate policy change), re-run the bench smoke configs and update
// the golden file in the same commit, saying why.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench_support/chaos_world.hpp"
#include "bench_support/dynamic_world.hpp"
#include "dynamic/scenario_engine.hpp"
#include "health/health_monitor.hpp"
#include "service/service_replay.hpp"

namespace insp {
namespace {

using benchx::DynamicWorld;
using benchx::make_dynamic_world;

std::map<std::string, std::uint64_t> load_golden() {
  const std::string path =
      std::string(INSP_TESTS_DIR) + "/golden/replay_signatures.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::map<std::string, std::uint64_t> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name, hex;
    ls >> name >> hex;
    golden[name] = std::stoull(hex, nullptr, 16);
  }
  return golden;
}

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

TEST(ReplaySignatureGolden, BenchDynamicSmokeSignatureIsPinned) {
  const auto golden = load_golden();
  ASSERT_TRUE(golden.count("bench_dynamic_smoke"));
  // Exactly bench_dynamic --smoke --seed 42: scale {40, 2, 24}, default
  // repair options.  The signature covers only the repair trajectory and
  // the final allocation, so the post-hoc simulation pass is skipped.
  DynamicWorld world = make_dynamic_world(42, {40, 2, 24});
  ScenarioOptions opts;
  opts.seed = 42;
  opts.simulate = false;
  const ScenarioResult result = replay_trace(
      world.apps, world.platform, world.catalog, world.trace, opts);
  EXPECT_EQ(to_hex(result.signature),
            to_hex(golden.at("bench_dynamic_smoke")));
}

TEST(ReplaySignatureGolden, BenchChaosSmokeSignaturesArePinned) {
  const auto golden = load_golden();
  // Exactly bench_chaos --smoke --seed 42, one row per chaos class.  The
  // signature covers the detector-inferred repair trajectory and the final
  // allocation only, so the post-hoc simulation pass is skipped.
  for (ChaosClass cls : all_chaos_classes()) {
    const std::string key =
        std::string("bench_chaos_smoke_") + to_string(cls);
    ASSERT_TRUE(golden.count(key)) << key;
    const benchx::ChaosWorld world = benchx::make_chaos_world(
        42, benchx::chaos_smoke_scale(), benchx::chaos_smoke_config(cls));
    HealthMonitorOptions opts;
    opts.seed = 42;
    opts.simulate = false;
    const HealthMonitorResult run = run_health_monitor(
        world.apps, world.platform, world.catalog, world.trace, opts);
    EXPECT_EQ(to_hex(run.signature), to_hex(golden.at(key)))
        << to_string(cls);
  }
}

TEST(ReplaySignatureGolden, BenchServiceSmokeSignaturesArePinned) {
  const auto golden = load_golden();
  // Exactly bench_service --smoke --seed 42: 2 shards, 20 operators and 24
  // events each, default service options (30 s epoch window).
  ServiceOptions opts;
  opts.seed = 42;
  for (int shard = 0; shard < 2; ++shard) {
    const std::string key =
        "bench_service_smoke_shard" + std::to_string(shard);
    ASSERT_TRUE(golden.count(key)) << key;
    DynamicWorld world = make_dynamic_world(
        42 + 7919ull * static_cast<std::uint64_t>(shard), {20, 2, 24});
    const ShardSpec spec{world.apps, world.platform, world.catalog,
                         world.trace};
    const ShardReplayResult ref =
        replay_shard_sequential(spec, shard, opts);
    EXPECT_TRUE(ref.initialized);
    EXPECT_EQ(to_hex(ref.signature), to_hex(golden.at(key)))
        << "shard " << shard;
  }
}

} // namespace
} // namespace insp
