// The parallel sweep engine must be bit-identical to the serial one: every
// task derives its RNGs purely from (base_seed, x_index, rep), and results
// are merged in serial order.  These tests compare whole SweepResults across
// thread counts, including the raw sample vectors (values AND insertion
// order), and log the serial/parallel wall-clock ratio for reference.
#include "bench_support/experiment.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>

#include "util/thread_pool.hpp"

namespace insp {
namespace {

InstanceConfig small_cfg(double n) {
  InstanceConfig cfg;
  cfg.tree.num_operators = static_cast<int>(n);
  cfg.tree.alpha = 0.9;
  cfg.tree.num_object_types = 15;
  cfg.tree.object_size_lo = 5.0;
  cfg.tree.object_size_hi = 30.0;
  cfg.tree.download_freq = 0.5;
  cfg.servers.num_servers = 6;
  return cfg;
}

SweepSpec base_spec(int num_threads) {
  SweepSpec spec;
  spec.x_name = "N";
  spec.xs = {20, 40, 60};
  spec.repetitions = 10;
  spec.base_seed = 20090525;  // IPDPS 2009, for flavor
  spec.config_for = small_cfg;
  spec.num_threads = num_threads;
  return spec;
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.xs, b.xs);
  ASSERT_EQ(a.heuristics, b.heuristics);
  for (HeuristicKind h : a.heuristics) {
    const auto& cells_a = a.cells.at(h);
    const auto& cells_b = b.cells.at(h);
    ASSERT_EQ(cells_a.size(), cells_b.size());
    for (std::size_t i = 0; i < cells_a.size(); ++i) {
      SCOPED_TRACE(std::string(heuristic_name(h)) + " @ x index " +
                   std::to_string(i));
      EXPECT_EQ(cells_a[i].attempts, cells_b[i].attempts);
      EXPECT_EQ(cells_a[i].failures, cells_b[i].failures);
      // Raw sample vectors: exact double equality in insertion order.
      EXPECT_EQ(cells_a[i].cost.samples(), cells_b[i].cost.samples());
      EXPECT_EQ(cells_a[i].processors.samples(),
                cells_b[i].processors.samples());
    }
  }
}

TEST(SweepDeterminism, EightThreadsMatchesSerial) {
  const SweepResult serial = run_sweep(base_spec(1));
  const SweepResult parallel = run_sweep(base_spec(8));
  expect_identical(serial, parallel);
}

TEST(SweepDeterminism, AutoThreadsMatchesSerialAndLogsSpeedup) {
  using clock = std::chrono::steady_clock;

  const auto t0 = clock::now();
  const SweepResult serial = run_sweep(base_spec(1));
  const auto t1 = clock::now();
  const SweepResult parallel = run_sweep(base_spec(0));  // auto
  const auto t2 = clock::now();

  expect_identical(serial, parallel);

  const double serial_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double parallel_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  std::printf("[ timing ] serial %.1f ms, parallel(auto) %.1f ms, "
              "speedup %.2fx on %u hardware threads\n",
              serial_ms, parallel_ms,
              parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
              ThreadPool::resolve_num_threads(0));
}

TEST(SweepDeterminism, OddThreadCountsAgree) {
  // 3 threads does not divide the 3 x 10 grid evenly per worker, exercising
  // the dynamic index-claiming path.
  expect_identical(run_sweep(base_spec(3)), run_sweep(base_spec(5)));
}

TEST(SweepDeterminism, SubsetOfHeuristicsIsStillDeterministic) {
  SweepSpec s1 = base_spec(1);
  SweepSpec s8 = base_spec(8);
  s1.heuristics = {HeuristicKind::CompGreedy, HeuristicKind::SubtreeBottomUp};
  s8.heuristics = s1.heuristics;
  expect_identical(run_sweep(s1), run_sweep(s8));
}

} // namespace
} // namespace insp
