#include "multi/multi_app.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/constraints.hpp"
#include "sim/event_sim.hpp"
#include "sim/flow_analyzer.hpp"

namespace insp {
namespace {

using testhelpers::fig1a_tree;
using testhelpers::simple_platform;

std::vector<ApplicationSpec> two_apps(double rho1 = 1.0, double rho2 = 1.0) {
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), rho1});
  apps.push_back({fig1a_tree(1.0, 10.0), rho2});
  return apps;
}

TEST(CombineApplications, ForestShapeAndOffsets) {
  const auto apps = two_apps();
  const CombinedApplication c = combine_applications(apps);
  EXPECT_EQ(c.forest.num_operators(), 10);
  EXPECT_EQ(c.forest.num_leaves(), 10);
  ASSERT_EQ(c.forest.roots().size(), 2u);
  EXPECT_TRUE(c.forest.is_forest());
  EXPECT_FALSE(c.forest.validate().has_value());
  EXPECT_EQ(c.op_offset_of_app, (std::vector<int>{0, 5}));
  EXPECT_EQ(c.root_of_app, (std::vector<int>{0, 5}));
  for (int op = 0; op < 5; ++op) {
    EXPECT_EQ(c.app_of_op[static_cast<std::size_t>(op)], 0);
    EXPECT_EQ(c.app_of_op[static_cast<std::size_t>(op + 5)], 1);
  }
}

TEST(CombineApplications, FoldsThroughputIntoDemands) {
  const auto apps = two_apps(1.0, 2.5);
  const CombinedApplication c = combine_applications(apps);
  for (int op = 0; op < 5; ++op) {
    EXPECT_DOUBLE_EQ(c.forest.op(op).work, apps[0].tree.op(op).work);
    EXPECT_DOUBLE_EQ(c.forest.op(op + 5).work,
                     2.5 * apps[1].tree.op(op).work);
    EXPECT_DOUBLE_EQ(c.forest.op(op + 5).output_mb,
                     2.5 * apps[1].tree.op(op).output_mb);
  }
}

TEST(CombineApplications, RejectsMismatchedCatalogs) {
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 12.0), 1.0});  // different object sizes
  EXPECT_THROW(combine_applications(apps), std::invalid_argument);
}

TEST(CombineApplications, RejectsBadInput) {
  EXPECT_THROW(combine_applications({}), std::invalid_argument);
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(), 0.0});
  EXPECT_THROW(combine_applications(apps), std::invalid_argument);
}

TEST(MultiApp, JointAllocationIsValidAndServesBothRoots) {
  const auto apps = two_apps();
  const CombinedApplication c = combine_applications(apps);
  const Platform platform = simple_platform({{0, 1, 2}, {0, 1, 2}}, 3);
  const PriceCatalog catalog = PriceCatalog::paper_default();

  Rng rng(5);
  const AllocationOutcome out = allocate_joint(
      c, platform, catalog, HeuristicKind::SubtreeBottomUp, rng);
  ASSERT_TRUE(out.success) << out.failure_reason;

  Problem prob;
  prob.tree = &c.forest;
  prob.platform = &platform;
  prob.catalog = &catalog;
  prob.rho = 1.0;
  EXPECT_TRUE(check_allocation(prob, out.allocation).ok());

  const EventSimResult sim = simulate_allocation(prob, out.allocation);
  EXPECT_TRUE(sim.sustained) << sim.achieved_throughput;
  // Both roots produced results: total over roots exceeds one root's share.
  EXPECT_GT(sim.results_produced, 400);
}

TEST(MultiApp, JointNeverCostsMoreThanSeparateForSBU) {
  // Sharing processors cannot hurt a consolidating heuristic: the joint
  // forest admits every separate solution.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng gen(seed);
    TreeGenConfig cfg;
    cfg.num_operators = 15;
    cfg.alpha = 1.0;
    ObjectCatalog objects = ObjectCatalog::random(gen, 15, 5.0, 30.0, 0.5);
    std::vector<ApplicationSpec> apps;
    apps.push_back({generate_random_tree(gen, cfg, objects), 1.0});
    apps.push_back({generate_random_tree(gen, cfg, objects), 1.0});
    apps.push_back({generate_random_tree(gen, cfg, objects), 1.0});
    ServerDistConfig dist;
    const Platform platform = make_paper_platform(gen, dist);
    const PriceCatalog catalog = PriceCatalog::paper_default();

    Rng r1(7), r2(7);
    const CombinedApplication c = combine_applications(apps);
    const AllocationOutcome joint = allocate_joint(
        c, platform, catalog, HeuristicKind::SubtreeBottomUp, r1);
    const SeparateAllocationOutcome separate = allocate_separate(
        apps, platform, catalog, HeuristicKind::SubtreeBottomUp, r2);
    if (!joint.success || !separate.success) continue;
    EXPECT_LE(joint.cost, separate.total_cost + 1e-9) << "seed " << seed;
  }
}

TEST(MultiApp, HigherPerAppThroughputRaisesDemand) {
  const auto apps_lo = two_apps(1.0, 1.0);
  const auto apps_hi = two_apps(1.0, 4.0);
  const CombinedApplication lo = combine_applications(apps_lo);
  const CombinedApplication hi = combine_applications(apps_hi);
  const Platform platform = simple_platform({{0, 1, 2}, {0, 1, 2}}, 3);
  const PriceCatalog catalog = PriceCatalog::paper_default();

  Problem plo, phi;
  plo.tree = &lo.forest;
  phi.tree = &hi.forest;
  plo.platform = phi.platform = &platform;
  plo.catalog = phi.catalog = &catalog;

  Rng r1(3), r2(3);
  const auto out_lo =
      allocate(plo, HeuristicKind::CompGreedy, r1);
  const auto out_hi =
      allocate(phi, HeuristicKind::CompGreedy, r2);
  ASSERT_TRUE(out_lo.success && out_hi.success);
  // Demands folded: the high-throughput combination costs at least as much.
  EXPECT_GE(out_hi.cost + 1e-9, out_lo.cost);
}

TEST(MultiApp, SeparateReportsFailingApplication) {
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(2.5, 30.0), 1.0});  // infeasible root op
  const Platform platform = simple_platform({{0, 1, 2}}, 3);
  const PriceCatalog catalog = PriceCatalog::paper_default();
  Rng rng(1);
  const SeparateAllocationOutcome out = allocate_separate(
      apps, platform, catalog, HeuristicKind::CompGreedy, rng);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("application 1"), std::string::npos);
}

TEST(MultiApp, ForestFlowAnalysisCoversAllApplications) {
  const auto apps = two_apps();
  const CombinedApplication c = combine_applications(apps);
  const Platform platform = simple_platform({{0, 1, 2}}, 3);
  const PriceCatalog catalog = PriceCatalog::paper_default();
  Rng rng(2);
  const AllocationOutcome out = allocate_joint(
      c, platform, catalog, HeuristicKind::CommGreedy, rng);
  ASSERT_TRUE(out.success) << out.failure_reason;
  Problem prob;
  prob.tree = &c.forest;
  prob.platform = &platform;
  prob.catalog = &catalog;
  const FlowAnalysis flow = analyze_flow(prob, out.allocation);
  EXPECT_GE(flow.max_throughput, 1.0 - 1e-9);
}

} // namespace
} // namespace insp
