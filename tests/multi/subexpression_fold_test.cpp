// The fold pass and its differential oracle: folding a combined forest's
// shared subexpressions must (a) be the identity on duplicate-free input,
// (b) merge exactly the occurrences the analysis predicts, and (c) never
// cost more than the unfolded forest while every allocation stays
// sim-sustained — the realized counterpart of estimate_sharing_savings.
#include "multi/subexpression_fold.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/constraints.hpp"
#include "multi/multi_app.hpp"
#include "multi/subexpression.hpp"
#include "platform/server_distribution.hpp"
#include "sim/event_sim.hpp"

namespace insp {
namespace {

using testhelpers::fig1a_tree;
using testhelpers::simple_platform;

ObjectCatalog small_catalog() {
  return ObjectCatalog({{0, 10.0, 0.5}, {1, 20.0, 0.5}, {2, 30.0, 0.5}});
}

TEST(SubexpressionFold, IdentityOnDuplicateFreeForest) {
  const ObjectCatalog objects = small_catalog();
  std::vector<ApplicationSpec> apps;
  {
    TreeBuilder b(objects);
    const int root = b.add_operator(kNoNode);
    b.add_leaf(root, 0);
    b.add_leaf(root, 1);
    apps.push_back({b.build(1.0), 1.0});
  }
  {
    TreeBuilder b(objects);
    const int root = b.add_operator(kNoNode);
    b.add_leaf(root, 1);
    b.add_leaf(root, 2);
    apps.push_back({b.build(1.0), 1.0});
  }
  const CombinedApplication c = combine_applications(apps);
  const FoldResult f = fold_shared_subexpressions(c.forest);
  EXPECT_EQ(f.stats.operators_before, 2);
  EXPECT_EQ(f.stats.operators_after, 2);
  EXPECT_EQ(f.stats.merged_occurrences, 0);
  EXPECT_EQ(f.stats.shared_nodes, 0);
  EXPECT_DOUBLE_EQ(f.stats.work_saved, 0.0);
  EXPECT_EQ(f.old_to_new, (std::vector<int>{0, 1}));
  EXPECT_TRUE(f.dag.is_tree_shaped());
  for (int i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(f.dag.op(i).work, c.forest.op(i).work);
    EXPECT_DOUBLE_EQ(f.dag.op(i).output_mb, c.forest.op(i).output_mb);
  }
}

TEST(SubexpressionFold, MergesIdenticalApplications) {
  // Two copies of fig1a: everything below the roots is equivalent, so the
  // second application keeps only its root and reads the first one's nodes.
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  const CombinedApplication c = combine_applications(apps);
  const FoldResult f = fold_shared_subexpressions(c.forest);

  EXPECT_EQ(f.stats.operators_before, 10);
  EXPECT_EQ(f.stats.operators_after, 6);
  EXPECT_EQ(f.stats.merged_occurrences, 4);
  // The two direct inputs of the duplicated root (n5, n3) fan out to both
  // roots; the deeper merged nodes keep a single consumer.
  EXPECT_EQ(f.stats.shared_nodes, 2);
  EXPECT_GT(f.stats.work_saved, 0.0);
  EXPECT_FALSE(f.dag.validate().has_value());
  EXPECT_FALSE(f.dag.is_tree_shaped());
  ASSERT_EQ(f.dag.roots().size(), 2u);
  // The roots stay distinct; each non-root pair collapses to one node.
  EXPECT_NE(f.old_to_new[0], f.old_to_new[5]);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(f.old_to_new[static_cast<std::size_t>(i)],
              f.old_to_new[static_cast<std::size_t>(i + 5)]);
  }

  // Realized savings are the prediction minus the duplicated ROOT's work:
  // the analysis counts the whole duplicated tree, but each application
  // keeps its own result stream, so the fold never merges roots.
  const SharingSavings predicted =
      estimate_sharing_savings(apps, PriceCatalog::paper_default());
  const MegaOps root_work = apps[0].tree.op(apps[0].tree.root()).work;
  EXPECT_NEAR(f.stats.work_saved, predicted.work_saved - root_work,
              1e-9 * (1.0 + predicted.work_saved));
}

TEST(SubexpressionFold, MergedNodeTakesMaxDemandAndPerEdgeDeltas) {
  // Same application at rho 1 and rho 2: after combine_applications folds
  // the throughputs into the demands, the merged producer must be sized for
  // the demanding consumer (max), while each consumer edge still carries
  // the volume its own application ships.
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 2.0});
  const CombinedApplication c = combine_applications(apps);
  const FoldResult f = fold_shared_subexpressions(c.forest);
  ASSERT_EQ(f.stats.operators_after, 6);

  // Forest id 1 is app 0's n5; id 6 is app 1's (merged into 1).
  const int n5 = f.old_to_new[1];
  EXPECT_EQ(n5, f.old_to_new[6]);
  const OperatorNode& shared = f.dag.op(n5);
  EXPECT_DOUBLE_EQ(shared.work, c.forest.op(6).work);           // 2x > 1x
  EXPECT_DOUBLE_EQ(shared.output_mb, c.forest.op(6).output_mb);
  ASSERT_EQ(shared.out.size(), 2u);
  // Edge to app 0's root keeps the rho=1 volume; edge to app 1's root the
  // rho=2 volume.
  const int root0 = f.old_to_new[0];
  const int root1 = f.old_to_new[5];
  for (const OutEdge& e : shared.out) {
    if (e.dst == root0) {
      EXPECT_DOUBLE_EQ(e.delta, c.forest.op(1).output_mb);
    } else {
      EXPECT_EQ(e.dst, root1);
      EXPECT_DOUBLE_EQ(e.delta, c.forest.op(6).output_mb);
    }
  }
}

TEST(SubexpressionFold, FoldedDagCostsNoMoreAndBothSimSustain) {
  // Differential oracle over seeded workloads with guaranteed sharing (two
  // of the three applications are identical): allocate the unfolded forest
  // and the folded DAG with the same strategy and seeds; whenever both
  // succeed, the folded plan must be valid, cost no more, and both plans
  // must sustain rho = 1 in the event simulator.
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng gen(seed);
    ObjectCatalog objects = ObjectCatalog::random(gen, 15, 5.0, 30.0, 0.5);
    TreeGenConfig cfg;
    cfg.num_operators = 15;
    cfg.alpha = 1.0;
    std::vector<ApplicationSpec> apps;
    {
      Rng t(seed * 3 + 1);
      apps.push_back({generate_random_tree(t, cfg, objects), 1.0});
    }
    {
      Rng t(seed * 3 + 1);  // identical draw: shared subexpressions
      apps.push_back({generate_random_tree(t, cfg, objects), 1.0});
    }
    {
      Rng t(seed * 3 + 2);
      apps.push_back({generate_random_tree(t, cfg, objects), 1.0});
    }
    ServerDistConfig dist;
    const Platform platform = make_paper_platform(gen, dist);
    const PriceCatalog catalog = PriceCatalog::paper_default();

    const CombinedApplication c = combine_applications(apps);
    const FoldResult f = fold_shared_subexpressions(c.forest);
    ASSERT_FALSE(f.dag.validate().has_value()) << "seed " << seed;
    EXPECT_GT(f.stats.merged_occurrences, 0) << "seed " << seed;

    Problem unfolded;
    unfolded.tree = &c.forest;
    unfolded.platform = &platform;
    unfolded.catalog = &catalog;
    Problem folded = unfolded;
    folded.tree = &f.dag;

    Rng r1(99), r2(99);
    const AllocationOutcome before =
        allocate(unfolded, HeuristicKind::SubtreeBottomUp, r1);
    const AllocationOutcome after =
        allocate(folded, HeuristicKind::SubtreeBottomUp, r2);
    if (!before.success || !after.success) continue;
    ++compared;

    EXPECT_TRUE(check_allocation(folded, after.allocation).ok())
        << "seed " << seed;
    EXPECT_LE(after.cost, before.cost + 1e-9) << "seed " << seed;
    EXPECT_TRUE(simulate_allocation(unfolded, before.allocation).sustained)
        << "seed " << seed;
    EXPECT_TRUE(simulate_allocation(folded, after.allocation).sustained)
        << "seed " << seed;
  }
  EXPECT_GE(compared, 3);
}

TEST(SubexpressionFold, FoldedDagAllocationServesEveryRoot) {
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  const CombinedApplication c = combine_applications(apps);
  const FoldResult f = fold_shared_subexpressions(c.forest);
  const Platform platform = simple_platform({{0, 1, 2}, {0, 1, 2}}, 3);
  const PriceCatalog catalog = PriceCatalog::paper_default();

  Problem prob;
  prob.tree = &f.dag;
  prob.platform = &platform;
  prob.catalog = &catalog;
  Rng rng(11);
  const AllocationOutcome out =
      allocate(prob, HeuristicKind::CompGreedy, rng);
  ASSERT_TRUE(out.success) << out.failure_reason;
  EXPECT_TRUE(check_allocation(prob, out.allocation).ok());
  const EventSimResult sim = simulate_allocation(prob, out.allocation);
  EXPECT_TRUE(sim.sustained) << sim.achieved_throughput;
  // Two result streams come off the shared pipeline.
  EXPECT_GT(sim.results_produced, 400);
}

} // namespace
} // namespace insp
