#include "multi/subexpression.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace insp {
namespace {

using testhelpers::fig1a_tree;

/// op = JOIN(o_a, o_b) with an optional extra level.
OperatorTree leaf_pair_tree(const ObjectCatalog& objects, int a, int b) {
  TreeBuilder builder(objects);
  const int root = builder.add_operator(kNoNode);
  builder.add_leaf(root, a);
  builder.add_leaf(root, b);
  return builder.build(1.0);
}

ObjectCatalog small_catalog() {
  return ObjectCatalog({{0, 10.0, 0.5}, {1, 20.0, 0.5}, {2, 30.0, 0.5}});
}

TEST(Subexpression, IdenticalApplicationsShareEverything) {
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  const auto shared = find_common_subexpressions(apps);
  // The maximal shared expression is the whole tree (nested duplicates are
  // suppressed by the maximality rule).
  ASSERT_FALSE(shared.empty());
  EXPECT_EQ(shared.front().num_operators, 5);
  EXPECT_EQ(shared.front().occurrences.size(), 2u);
  MegaOps full_work = 0.0;
  for (const auto& n : apps[0].tree.operators()) full_work += n.work;
  EXPECT_DOUBLE_EQ(shared.front().work, full_work);
  EXPECT_DOUBLE_EQ(shared.front().work_saved(), full_work);
}

TEST(Subexpression, DisjointApplicationsShareNothing) {
  const ObjectCatalog objects = small_catalog();
  std::vector<ApplicationSpec> apps;
  apps.push_back({leaf_pair_tree(objects, 0, 1), 1.0});
  apps.push_back({leaf_pair_tree(objects, 1, 2), 1.0});
  EXPECT_TRUE(find_common_subexpressions(apps).empty());
}

TEST(Subexpression, CommutativityChildOrderIgnored) {
  const ObjectCatalog objects = small_catalog();
  std::vector<ApplicationSpec> apps;
  apps.push_back({leaf_pair_tree(objects, 0, 1), 1.0});
  apps.push_back({leaf_pair_tree(objects, 1, 0), 1.0});  // swapped leaves
  const auto shared = find_common_subexpressions(apps);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared.front().occurrences.size(), 2u);
}

TEST(Subexpression, WithinApplicationDuplicatesFound) {
  // One application containing the same sub-join twice.
  const ObjectCatalog objects = small_catalog();
  TreeBuilder b(objects);
  const int root = b.add_operator(kNoNode);
  const int l = b.add_operator(root);
  const int r = b.add_operator(root);
  b.add_leaf(l, 0);
  b.add_leaf(l, 1);
  b.add_leaf(r, 0);
  b.add_leaf(r, 1);
  std::vector<ApplicationSpec> apps;
  apps.push_back({b.build(1.0), 1.0});
  const auto shared = find_common_subexpressions(apps);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared.front().occurrences.size(), 2u);
  EXPECT_EQ(shared.front().occurrences[0].app, 0);
  EXPECT_EQ(shared.front().occurrences[1].app, 0);
}

TEST(Subexpression, NestedDuplicatesSuppressed) {
  // Both apps contain JOIN(JOIN(o0,o1), o2): only the outer join reported.
  const ObjectCatalog objects = small_catalog();
  auto build = [&] {
    TreeBuilder b(objects);
    const int root = b.add_operator(kNoNode);
    const int inner = b.add_operator(root);
    b.add_leaf(inner, 0);
    b.add_leaf(inner, 1);
    b.add_leaf(root, 2);
    return b.build(1.0);
  };
  std::vector<ApplicationSpec> apps;
  apps.push_back({build(), 1.0});
  apps.push_back({build(), 1.0});
  const auto shared = find_common_subexpressions(apps);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared.front().num_operators, 2);
}

TEST(Subexpression, DownloadRateDeduplicatesTypes) {
  const ObjectCatalog objects = small_catalog();
  TreeBuilder b(objects);
  const int root = b.add_operator(kNoNode);
  b.add_leaf(root, 0);
  b.add_leaf(root, 0);  // same type twice
  std::vector<ApplicationSpec> apps;
  apps.push_back({b.build(1.0), 1.0});
  TreeBuilder b2(objects);
  const int root2 = b2.add_operator(kNoNode);
  b2.add_leaf(root2, 0);
  b2.add_leaf(root2, 0);
  apps.push_back({b2.build(1.0), 1.0});
  const auto shared = find_common_subexpressions(apps);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_DOUBLE_EQ(shared.front().download_rate, 5.0);  // one 10MB @ 0.5Hz
}

TEST(Subexpression, SavingsEstimateScalesWithOccurrences) {
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  const PriceCatalog catalog = PriceCatalog::paper_default();
  const SharingSavings s = estimate_sharing_savings(apps, catalog);
  MegaOps full_work = 0.0;
  for (const auto& n : apps[0].tree.operators()) full_work += n.work;
  EXPECT_DOUBLE_EQ(s.work_saved, 2.0 * full_work);
  EXPECT_GT(s.download_saved, 0.0);
  EXPECT_GT(s.cost_bound, 0.0);
  // Re-pricing at the best Mops/$ rate: bounded by cost of the saved work
  // on the most cost-effective CPU.
  EXPECT_LT(s.cost_bound, 2.0 * full_work);  // ratio >> 1 Mops/$
}

TEST(Subexpression, SortedByWorkSavedDescending) {
  const ObjectCatalog objects = small_catalog();
  // App pair sharing a big subtree; another pair sharing a small one.
  std::vector<ApplicationSpec> apps;
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({fig1a_tree(1.0, 10.0), 1.0});
  apps.push_back({leaf_pair_tree(objects, 0, 1), 1.0});
  apps.push_back({leaf_pair_tree(objects, 0, 1), 1.0});
  const auto shared = find_common_subexpressions(apps);
  ASSERT_GE(shared.size(), 2u);
  for (std::size_t i = 1; i < shared.size(); ++i) {
    EXPECT_GE(shared[i - 1].work_saved(), shared[i].work_saved());
  }
}

} // namespace
} // namespace insp
