#include "net/bandwidth_ledger.hpp"

#include <gtest/gtest.h>

namespace insp {
namespace {

TEST(CardLedger, AddRemoveTracksUsage) {
  CardLedger cards({100.0, 200.0});
  EXPECT_DOUBLE_EQ(cards.used(0), 0.0);
  cards.add(0, 30.0);
  cards.add(0, 20.0);
  EXPECT_DOUBLE_EQ(cards.used(0), 50.0);
  EXPECT_DOUBLE_EQ(cards.headroom(0), 50.0);
  cards.remove(0, 30.0);
  EXPECT_DOUBLE_EQ(cards.used(0), 20.0);
  EXPECT_DOUBLE_EQ(cards.used(1), 0.0);
}

TEST(CardLedger, CanAddRespectsCapacity) {
  CardLedger cards({100.0});
  EXPECT_TRUE(cards.can_add(0, 100.0));
  cards.add(0, 60.0);
  EXPECT_TRUE(cards.can_add(0, 40.0));
  EXPECT_FALSE(cards.can_add(0, 41.0));
}

TEST(CardLedger, EpsilonToleranceAtBoundary) {
  CardLedger cards({1.0});
  cards.add(0, 0.3);
  cards.add(0, 0.3);
  cards.add(0, 0.3);
  // 0.9 + 0.1 may exceed 1.0 by floating error; must still fit.
  EXPECT_TRUE(cards.can_add(0, 0.1));
}

TEST(CardLedger, SetCapacityKeepsUsage) {
  CardLedger cards({100.0});
  cards.add(0, 40.0);
  cards.set_capacity(0, 50.0);
  EXPECT_DOUBLE_EQ(cards.capacity(0), 50.0);
  EXPECT_DOUBLE_EQ(cards.used(0), 40.0);
  EXPECT_FALSE(cards.can_add(0, 20.0));
}

TEST(CardLedger, RemoveToZeroCancelsDrift) {
  CardLedger cards({10.0});
  cards.add(0, 0.1);
  cards.add(0, 0.2);
  cards.remove(0, 0.2);
  cards.remove(0, 0.1);
  EXPECT_DOUBLE_EQ(cards.used(0), 0.0);
}

TEST(LinkLedger, SymmetricKeys) {
  LinkLedger links(100.0);
  links.add(3, 7, 25.0);
  EXPECT_DOUBLE_EQ(links.used(7, 3), 25.0);
  EXPECT_DOUBLE_EQ(links.used(3, 7), 25.0);
  links.remove(7, 3, 25.0);
  EXPECT_DOUBLE_EQ(links.used(3, 7), 0.0);
  EXPECT_EQ(links.active_links(), 0u);
}

TEST(LinkLedger, IndependentPairs) {
  LinkLedger links(100.0);
  links.add(0, 1, 10.0);
  links.add(0, 2, 20.0);
  links.add(1, 2, 30.0);
  EXPECT_DOUBLE_EQ(links.used(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(links.used(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(links.used(1, 2), 30.0);
  EXPECT_EQ(links.active_links(), 3u);
}

TEST(LinkLedger, CanAddAndHeadroom) {
  LinkLedger links(50.0);
  links.add(0, 1, 30.0);
  EXPECT_TRUE(links.can_add(0, 1, 20.0));
  EXPECT_FALSE(links.can_add(0, 1, 21.0));
  EXPECT_DOUBLE_EQ(links.headroom(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(links.headroom(5, 6), 50.0);  // untouched pair
}

TEST(LinkLedger, AllWithinDetectsOverload) {
  LinkLedger links(50.0);
  links.add(0, 1, 30.0);
  EXPECT_TRUE(links.all_within());
  links.add(0, 1, 30.0);
  EXPECT_FALSE(links.all_within());
}

TEST(LinkLedger, EntriesExposesActiveLinks) {
  LinkLedger links(100.0);
  links.add(2, 1, 5.0);
  const auto& entries = links.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.begin()->first, (std::pair<int, int>{1, 2}));
  EXPECT_DOUBLE_EQ(entries.begin()->second, 5.0);
}

TEST(LinkLedger, ZeroedEntriesErased) {
  LinkLedger links(100.0);
  links.add(0, 1, 5.0);
  links.add(0, 1, 7.0);
  links.remove(0, 1, 5.0);
  EXPECT_EQ(links.active_links(), 1u);
  links.remove(0, 1, 7.0);
  EXPECT_EQ(links.active_links(), 0u);
}

// ---------------------------------------------------------------------------
// Transaction / touched-set delta API (docs/DESIGN.md §5)
// ---------------------------------------------------------------------------

TEST(LinkLedgerTxn, CommitKeepsChangesAndClosesTxn) {
  LinkLedger links(100.0);
  links.add(0, 1, 10.0);
  links.begin_txn();
  EXPECT_TRUE(links.in_txn());
  links.add(0, 1, 5.0);
  links.add(2, 3, 7.0);
  EXPECT_EQ(links.touched_links(), 2u);
  links.commit_txn();
  EXPECT_FALSE(links.in_txn());
  EXPECT_DOUBLE_EQ(links.used(0, 1), 15.0);
  EXPECT_DOUBLE_EQ(links.used(2, 3), 7.0);
}

TEST(LinkLedgerTxn, RollbackRestoresValuesAndAbsences) {
  LinkLedger links(100.0);
  links.add(0, 1, 10.0);
  links.begin_txn();
  links.add(0, 1, 5.0);   // existing entry grows
  links.add(2, 3, 7.0);   // entry created inside the txn
  links.remove(0, 1, 15.0);  // existing entry erased inside the txn
  EXPECT_EQ(links.active_links(), 1u);
  links.rollback_txn();
  EXPECT_FALSE(links.in_txn());
  EXPECT_DOUBLE_EQ(links.used(0, 1), 10.0);  // exact pre-txn value
  EXPECT_DOUBLE_EQ(links.used(2, 3), 0.0);
  EXPECT_EQ(links.active_links(), 1u);  // (2,3) absent again, not zeroed
}

TEST(LinkLedgerTxn, RollbackOfRemoveReinsertsExactValue) {
  LinkLedger links(100.0);
  links.add(4, 5, 0.1);
  links.add(4, 5, 0.2);
  const MBps before = links.used(4, 5);
  links.begin_txn();
  links.remove(4, 5, before);  // erased (drops to ~0)
  EXPECT_EQ(links.active_links(), 0u);
  links.rollback_txn();
  EXPECT_DOUBLE_EQ(links.used(4, 5), before);
  EXPECT_EQ(links.active_links(), 1u);
}

TEST(LinkLedgerTxn, TouchedWithinChecksOnlyTouchedLinks) {
  LinkLedger links(50.0);
  links.add(0, 1, 80.0);  // overloaded, but outside any txn
  links.begin_txn();
  links.add(2, 3, 10.0);
  EXPECT_TRUE(links.touched_within());  // (0,1) is not consulted
  EXPECT_FALSE(links.all_within());     // the full scan still sees it
  links.add(4, 5, 60.0);
  EXPECT_FALSE(links.touched_within());  // the new violation is touched
  links.rollback_txn();
}

TEST(LinkLedgerTxn, TouchedWithinSeesViolationOnExistingLink) {
  LinkLedger links(50.0);
  links.add(0, 1, 45.0);
  links.begin_txn();
  links.add(0, 1, 10.0);  // pushes the touched link over capacity
  EXPECT_FALSE(links.touched_within());
  links.rollback_txn();
  EXPECT_DOUBLE_EQ(links.used(0, 1), 45.0);
  EXPECT_TRUE(links.all_within());
}

TEST(LinkLedgerTxn, BackToBackTransactionsAreIndependent) {
  LinkLedger links(100.0);
  links.begin_txn();
  links.add(0, 1, 30.0);
  links.commit_txn();
  links.begin_txn();
  EXPECT_EQ(links.touched_links(), 0u);  // journal reset
  links.add(0, 1, 20.0);
  links.rollback_txn();
  EXPECT_DOUBLE_EQ(links.used(0, 1), 30.0);  // only the second txn undone
}

TEST(LinkLedgerTxn, TouchedNoWorseAllowsShrinkingPreexistingViolation) {
  LinkLedger links(50.0);
  links.add(0, 1, 80.0);  // already violated before the transaction
  links.begin_txn();
  links.remove(0, 1, 10.0);  // still violated, but strictly better
  EXPECT_FALSE(links.touched_within());
  EXPECT_TRUE(links.touched_no_worse());
  links.rollback_txn();
}

TEST(LinkLedgerTxn, TouchedNoWorseRejectsGrowingViolation) {
  LinkLedger links(50.0);
  links.add(0, 1, 80.0);
  links.begin_txn();
  links.add(0, 1, 5.0);  // the excess grows
  EXPECT_FALSE(links.touched_no_worse());
  links.rollback_txn();
}

TEST(LinkLedgerTxn, TouchedNoWorseRejectsNewViolation) {
  LinkLedger links(50.0);
  links.add(0, 1, 80.0);  // untouched violation elsewhere is irrelevant
  links.begin_txn();
  links.add(2, 3, 60.0);  // a *new* violation on a previously-fine link
  EXPECT_FALSE(links.touched_no_worse());
  links.rollback_txn();
}

TEST(LinkLedgerTxn, TouchedNoWorseJudgesAgainstFirstJournalEntry) {
  LinkLedger links(50.0);
  links.add(0, 1, 80.0);
  links.begin_txn();
  // Two steps: up then partially down, net increase.  Judging each entry
  // against its own recorded prior value would wrongly accept this.
  links.add(0, 1, 20.0);
  links.remove(0, 1, 10.0);
  EXPECT_FALSE(links.touched_no_worse());
  links.rollback_txn();
  // Net decrease over two steps is accepted.
  links.begin_txn();
  links.add(0, 1, 10.0);
  links.remove(0, 1, 25.0);
  EXPECT_TRUE(links.touched_no_worse());
  links.rollback_txn();
  EXPECT_DOUBLE_EQ(links.used(0, 1), 80.0);
}

TEST(LinkLedgerTxn, TouchedNoWorseAcceptsWithinCapacityChanges) {
  LinkLedger links(50.0);
  links.begin_txn();
  links.add(0, 1, 40.0);
  EXPECT_TRUE(links.touched_no_worse());
  links.commit_txn();
}

} // namespace
} // namespace insp
