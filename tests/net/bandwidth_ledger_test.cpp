#include "net/bandwidth_ledger.hpp"

#include <gtest/gtest.h>

namespace insp {
namespace {

TEST(CardLedger, AddRemoveTracksUsage) {
  CardLedger cards({100.0, 200.0});
  EXPECT_DOUBLE_EQ(cards.used(0), 0.0);
  cards.add(0, 30.0);
  cards.add(0, 20.0);
  EXPECT_DOUBLE_EQ(cards.used(0), 50.0);
  EXPECT_DOUBLE_EQ(cards.headroom(0), 50.0);
  cards.remove(0, 30.0);
  EXPECT_DOUBLE_EQ(cards.used(0), 20.0);
  EXPECT_DOUBLE_EQ(cards.used(1), 0.0);
}

TEST(CardLedger, CanAddRespectsCapacity) {
  CardLedger cards({100.0});
  EXPECT_TRUE(cards.can_add(0, 100.0));
  cards.add(0, 60.0);
  EXPECT_TRUE(cards.can_add(0, 40.0));
  EXPECT_FALSE(cards.can_add(0, 41.0));
}

TEST(CardLedger, EpsilonToleranceAtBoundary) {
  CardLedger cards({1.0});
  cards.add(0, 0.3);
  cards.add(0, 0.3);
  cards.add(0, 0.3);
  // 0.9 + 0.1 may exceed 1.0 by floating error; must still fit.
  EXPECT_TRUE(cards.can_add(0, 0.1));
}

TEST(CardLedger, SetCapacityKeepsUsage) {
  CardLedger cards({100.0});
  cards.add(0, 40.0);
  cards.set_capacity(0, 50.0);
  EXPECT_DOUBLE_EQ(cards.capacity(0), 50.0);
  EXPECT_DOUBLE_EQ(cards.used(0), 40.0);
  EXPECT_FALSE(cards.can_add(0, 20.0));
}

TEST(CardLedger, RemoveToZeroCancelsDrift) {
  CardLedger cards({10.0});
  cards.add(0, 0.1);
  cards.add(0, 0.2);
  cards.remove(0, 0.2);
  cards.remove(0, 0.1);
  EXPECT_DOUBLE_EQ(cards.used(0), 0.0);
}

TEST(LinkLedger, SymmetricKeys) {
  LinkLedger links(100.0);
  links.add(3, 7, 25.0);
  EXPECT_DOUBLE_EQ(links.used(7, 3), 25.0);
  EXPECT_DOUBLE_EQ(links.used(3, 7), 25.0);
  links.remove(7, 3, 25.0);
  EXPECT_DOUBLE_EQ(links.used(3, 7), 0.0);
  EXPECT_EQ(links.active_links(), 0u);
}

TEST(LinkLedger, IndependentPairs) {
  LinkLedger links(100.0);
  links.add(0, 1, 10.0);
  links.add(0, 2, 20.0);
  links.add(1, 2, 30.0);
  EXPECT_DOUBLE_EQ(links.used(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(links.used(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(links.used(1, 2), 30.0);
  EXPECT_EQ(links.active_links(), 3u);
}

TEST(LinkLedger, CanAddAndHeadroom) {
  LinkLedger links(50.0);
  links.add(0, 1, 30.0);
  EXPECT_TRUE(links.can_add(0, 1, 20.0));
  EXPECT_FALSE(links.can_add(0, 1, 21.0));
  EXPECT_DOUBLE_EQ(links.headroom(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(links.headroom(5, 6), 50.0);  // untouched pair
}

TEST(LinkLedger, AllWithinDetectsOverload) {
  LinkLedger links(50.0);
  links.add(0, 1, 30.0);
  EXPECT_TRUE(links.all_within());
  links.add(0, 1, 30.0);
  EXPECT_FALSE(links.all_within());
}

TEST(LinkLedger, EntriesExposesActiveLinks) {
  LinkLedger links(100.0);
  links.add(2, 1, 5.0);
  const auto& entries = links.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.begin()->first, (std::pair<int, int>{1, 2}));
  EXPECT_DOUBLE_EQ(entries.begin()->second, 5.0);
}

TEST(LinkLedger, ZeroedEntriesErased) {
  LinkLedger links(100.0);
  links.add(0, 1, 5.0);
  links.add(0, 1, 7.0);
  links.remove(0, 1, 5.0);
  EXPECT_EQ(links.active_links(), 1u);
  links.remove(0, 1, 7.0);
  EXPECT_EQ(links.active_links(), 0u);
}

} // namespace
} // namespace insp
