#include "planner/budget_planner.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/constraints.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(BudgetPlanner, InfeasibleWhenBudgetBelowOneProcessor) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  BudgetPlanConfig cfg;
  cfg.budget = 5000.0;  // below the cheapest processor ($7,548)
  Rng rng(1);
  const BudgetPlanResult r = plan_for_budget(f.problem(), cfg, rng);
  EXPECT_FALSE(r.feasible);
}

TEST(BudgetPlanner, SingleCheapProcessorBudget) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  BudgetPlanConfig cfg;
  cfg.budget = 7548.0;
  cfg.heuristic = HeuristicKind::CompGreedy;
  Rng rng(1);
  const BudgetPlanResult r = plan_for_budget(f.problem(), cfg, rng);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.outcome.cost, 7548.0 + 1e-9);
  // fig1a on one 11.72 GHz processor: rho* ~ 11720 / 250 ~ 46.9 results/s,
  // but the NIC caps it earlier; either way the planner should find a
  // double-digit rate.
  EXPECT_GT(r.planned_rho, 5.0);
  EXPECT_GE(r.sustainable_rho, r.planned_rho - 1e-6);
}

TEST(BudgetPlanner, MoreBudgetNeverLowersThroughput) {
  const Fixture f = testhelpers::random_fixture(3, 20, 1.2);
  double last_rho = 0.0;
  for (Dollars budget : {8000.0, 20000.0, 60000.0, 200000.0}) {
    BudgetPlanConfig cfg;
    cfg.budget = budget;
    cfg.heuristic = HeuristicKind::SubtreeBottomUp;
    Rng rng(5);
    const BudgetPlanResult r = plan_for_budget(f.problem(), cfg, rng);
    if (!r.feasible) continue;
    EXPECT_GE(r.planned_rho + 1e-9, last_rho) << "budget " << budget;
    last_rho = r.planned_rho;
  }
  EXPECT_GT(last_rho, 0.0);
}

TEST(BudgetPlanner, ChosenPlanIsValidAtPlannedRho) {
  const Fixture f = testhelpers::random_fixture(8, 25, 1.1);
  BudgetPlanConfig cfg;
  cfg.budget = 40000.0;
  Rng rng(2);
  const BudgetPlanResult r = plan_for_budget(f.problem(), cfg, rng);
  if (!r.feasible) GTEST_SKIP() << "instance needs more than the budget";
  Problem at_plan = f.problem();
  at_plan.rho = r.planned_rho;
  EXPECT_TRUE(check_allocation(at_plan, r.outcome.allocation).ok());
  EXPECT_LE(r.outcome.cost, cfg.budget + 1e-9);
}

TEST(BudgetPlanner, RespectsRhoCap) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  BudgetPlanConfig cfg;
  cfg.budget = 1e9;  // unlimited money
  cfg.rho_max = 2.0;
  Rng rng(1);
  const BudgetPlanResult r = plan_for_budget(f.problem(), cfg, rng);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.planned_rho, 2.0 + 1e-9);
  EXPECT_NEAR(r.planned_rho, 2.0, 1e-6);
}

TEST(BudgetPlanner, SustainableAtLeastPlanned) {
  const Fixture f = testhelpers::random_fixture(4, 15, 1.3);
  BudgetPlanConfig cfg;
  cfg.budget = 30000.0;
  Rng rng(9);
  const BudgetPlanResult r = plan_for_budget(f.problem(), cfg, rng);
  if (!r.feasible) GTEST_SKIP();
  EXPECT_GE(r.sustainable_rho, r.planned_rho - 1e-6);
}

} // namespace
} // namespace insp
