#include "platform/catalog.hpp"

#include <gtest/gtest.h>

namespace insp {
namespace {

TEST(Catalog, PaperDefaultShape) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  EXPECT_EQ(cat.cpus().size(), 5u);
  EXPECT_EQ(cat.nics().size(), 5u);
  EXPECT_EQ(cat.num_configs(), 25);
  EXPECT_DOUBLE_EQ(cat.base_price(), 7548.0);
  EXPECT_FALSE(cat.is_homogeneous());
}

TEST(Catalog, UnitsConversion) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  // 11.72 GHz -> 11720 Mops/s; 46.88 GHz max.
  EXPECT_DOUBLE_EQ(cat.cpus().front().speed, 11720.0);
  EXPECT_DOUBLE_EQ(cat.max_speed(), 46880.0);
  // 1 Gbps -> 125 MB/s; 20 Gbps -> 2500 MB/s.
  EXPECT_DOUBLE_EQ(cat.nics().front().bandwidth, 125.0);
  EXPECT_DOUBLE_EQ(cat.max_bandwidth(), 2500.0);
}

TEST(Catalog, CheapestAndMostExpensive) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  EXPECT_DOUBLE_EQ(cat.cost(cat.cheapest()), 7548.0);
  // Most expensive: base + 5299 (46.88 GHz) + 5999 (20 Gbps).
  EXPECT_DOUBLE_EQ(cat.cost(cat.most_expensive()), 7548.0 + 5299.0 + 5999.0);
  EXPECT_DOUBLE_EQ(cat.speed(cat.most_expensive()), 46880.0);
  EXPECT_DOUBLE_EQ(cat.bandwidth(cat.most_expensive()), 2500.0);
}

TEST(Catalog, CostComposition) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  // 25.60 GHz (idx 2, +2399) with 4 Gbps (idx 2, +1197).
  const ProcessorConfig cfg{2, 2};
  EXPECT_DOUBLE_EQ(cat.cost(cfg), 7548.0 + 2399.0 + 1197.0);
}

TEST(Catalog, ByCostIsSortedAndComplete) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  const auto& order = cat.by_cost();
  ASSERT_EQ(order.size(), 25u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(cat.cost(order[i - 1]), cat.cost(order[i]));
  }
  EXPECT_DOUBLE_EQ(cat.cost(order.front()), 7548.0);
}

TEST(Catalog, CheapestMeetingPicksMinimalUpgrade) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  // Needs more than 11.72 GHz but within 19.20; NIC fits the 1 Gbps card.
  const auto cfg = cat.cheapest_meeting(15000.0, 100.0);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cat.speed(*cfg), 19200.0);
  EXPECT_DOUBLE_EQ(cat.bandwidth(*cfg), 125.0);
  EXPECT_DOUBLE_EQ(cat.cost(*cfg), 7548.0 + 1550.0);
}

TEST(Catalog, CheapestMeetingZeroLoadIsCheapest) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  const auto cfg = cat.cheapest_meeting(0.0, 0.0);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cat.cost(*cfg), 7548.0);
}

TEST(Catalog, CheapestMeetingImpossibleReturnsNullopt) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  EXPECT_FALSE(cat.cheapest_meeting(50000.0, 0.0).has_value());
  EXPECT_FALSE(cat.cheapest_meeting(0.0, 3000.0).has_value());
}

TEST(Catalog, CheapestMeetingBoundaryWithEpsilon) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  // Exactly the max: must still fit (epsilon tolerance).
  const auto cfg = cat.cheapest_meeting(46880.0, 2500.0);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cat.cost(*cfg), cat.cost(cat.most_expensive()));
}

TEST(Catalog, HomogeneousSingleConfig) {
  const PriceCatalog cat = PriceCatalog::homogeneous();
  EXPECT_TRUE(cat.is_homogeneous());
  EXPECT_EQ(cat.num_configs(), 1);
  EXPECT_DOUBLE_EQ(cat.cost(cat.cheapest()), cat.cost(cat.most_expensive()));
  EXPECT_DOUBLE_EQ(cat.max_speed(), 46880.0);
}

TEST(Catalog, RejectsEmptyLists) {
  EXPECT_THROW(PriceCatalog(100.0, {}, {{125.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(PriceCatalog(100.0, {{1000.0, 0.0}}, {}),
               std::invalid_argument);
}

TEST(Catalog, UnsortedInputsAreSorted) {
  PriceCatalog cat(10.0,
                   {{3000.0, 30.0}, {1000.0, 0.0}, {2000.0, 20.0}},
                   {{250.0, 5.0}, {125.0, 0.0}});
  EXPECT_DOUBLE_EQ(cat.cpus().front().speed, 1000.0);
  EXPECT_DOUBLE_EQ(cat.cpus().back().speed, 3000.0);
  EXPECT_DOUBLE_EQ(cat.nics().front().bandwidth, 125.0);
}

TEST(Catalog, DescribeMentionsSpeedBandwidthCost) {
  const PriceCatalog cat = PriceCatalog::paper_default();
  const std::string d = cat.describe(cat.most_expensive());
  EXPECT_NE(d.find("46.88"), std::string::npos);
  EXPECT_NE(d.find("20"), std::string::npos);
  EXPECT_NE(d.find("18846"), std::string::npos);
}

} // namespace
} // namespace insp
