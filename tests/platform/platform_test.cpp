#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace insp {
namespace {

using testhelpers::simple_platform;

TEST(Platform, PaperDefaultCapacities) {
  const Platform p = Platform::paper_default({{0, 1}, {1, 2}, {2}}, 3);
  EXPECT_EQ(p.num_servers(), 3);
  EXPECT_DOUBLE_EQ(p.server(0).card_bandwidth, 10000.0);  // 10 GB/s
  EXPECT_DOUBLE_EQ(p.link_server_proc(), 1000.0);         // 1 GB/s
  EXPECT_DOUBLE_EQ(p.link_proc_proc(), 1000.0);
}

TEST(Platform, ServersWithTypeIndex) {
  const Platform p = simple_platform({{0, 1}, {1, 2}, {2}}, 3);
  EXPECT_EQ(p.servers_with(0), std::vector<int>{0});
  EXPECT_EQ(p.servers_with(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(p.servers_with(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(p.availability(1), 2);
  EXPECT_TRUE(p.all_types_hosted());
}

TEST(Platform, UnhostedTypeDetected) {
  const Platform p = simple_platform({{0}, {0}}, 2);
  EXPECT_EQ(p.availability(1), 0);
  EXPECT_FALSE(p.all_types_hosted());
}

TEST(Platform, HostsUsesSortedSearch) {
  const Platform p = simple_platform({{2, 0, 1}}, 3);
  EXPECT_TRUE(p.server(0).hosts(0));
  EXPECT_TRUE(p.server(0).hosts(1));
  EXPECT_TRUE(p.server(0).hosts(2));
}

TEST(Platform, DuplicateHostedTypesDeduplicated) {
  const Platform p = simple_platform({{1, 1, 0}}, 2);
  EXPECT_EQ(p.server(0).object_types, (std::vector<int>{0, 1}));
  EXPECT_EQ(p.availability(1), 1);
}

TEST(Platform, RejectsNoServers) {
  EXPECT_THROW(Platform({}, 1000.0, 1000.0, 3), std::invalid_argument);
}

TEST(Platform, RejectsUnknownHostedType) {
  std::vector<DataServer> servers = {{0, 1000.0, {5}}};
  EXPECT_THROW(Platform(std::move(servers), 1000.0, 1000.0, 3),
               std::invalid_argument);
}

TEST(Platform, RejectsNonPositiveTypeCount) {
  std::vector<DataServer> servers = {{0, 1000.0, {}}};
  EXPECT_THROW(Platform(std::move(servers), 1000.0, 1000.0, 0),
               std::invalid_argument);
}

} // namespace
} // namespace insp
