#include "platform/server_distribution.hpp"

#include <gtest/gtest.h>

namespace insp {
namespace {

TEST(ServerDistribution, EveryTypeHostedAtLeastOnce) {
  Rng rng(1);
  ServerDistConfig cfg;  // 6 servers, 15 types
  for (int rep = 0; rep < 20; ++rep) {
    const auto hosted = distribute_objects(rng, cfg);
    ASSERT_EQ(hosted.size(), 6u);
    std::vector<int> count(15, 0);
    for (const auto& server : hosted) {
      for (int t : server) ++count[static_cast<std::size_t>(t)];
    }
    for (int t = 0; t < 15; ++t) {
      EXPECT_GE(count[static_cast<std::size_t>(t)], 1) << "type " << t;
    }
  }
}

TEST(ServerDistribution, NoReplicationGivesExactlyOneHost) {
  Rng rng(2);
  ServerDistConfig cfg;
  cfg.replication_prob = 0.0;
  const auto hosted = distribute_objects(rng, cfg);
  std::vector<int> count(15, 0);
  for (const auto& server : hosted) {
    for (int t : server) ++count[static_cast<std::size_t>(t)];
  }
  for (int t = 0; t < 15; ++t) {
    EXPECT_EQ(count[static_cast<std::size_t>(t)], 1);
  }
}

TEST(ServerDistribution, FullReplicationEverywhere) {
  Rng rng(3);
  ServerDistConfig cfg;
  cfg.replication_prob = 1.0;
  const auto hosted = distribute_objects(rng, cfg);
  for (const auto& server : hosted) {
    EXPECT_EQ(server.size(), 15u);
  }
}

TEST(ServerDistribution, ReplicationLevelMatchesProbability) {
  Rng rng(4);
  ServerDistConfig cfg;
  cfg.replication_prob = 0.25;
  double total_copies = 0;
  const int reps = 50;
  for (int i = 0; i < reps; ++i) {
    for (const auto& server : distribute_objects(rng, cfg)) {
      total_copies += static_cast<double>(server.size());
    }
  }
  // E[copies per type] = 1 + 5 * 0.25 = 2.25 over 15 types.
  EXPECT_NEAR(total_copies / (reps * 15.0), 2.25, 0.15);
}

TEST(ServerDistribution, DeterministicGivenSeed) {
  Rng a(9), b(9);
  ServerDistConfig cfg;
  EXPECT_EQ(distribute_objects(a, cfg), distribute_objects(b, cfg));
}

TEST(ServerDistribution, MakePaperPlatformWiring) {
  Rng rng(5);
  ServerDistConfig cfg;
  const Platform p = make_paper_platform(rng, cfg);
  EXPECT_EQ(p.num_servers(), 6);
  EXPECT_EQ(p.num_object_types(), 15);
  EXPECT_TRUE(p.all_types_hosted());
  EXPECT_DOUBLE_EQ(p.server(0).card_bandwidth, 10000.0);
}

TEST(ServerDistribution, RejectsBadCounts) {
  Rng rng(6);
  ServerDistConfig cfg;
  cfg.num_servers = 0;
  EXPECT_THROW(distribute_objects(rng, cfg), std::invalid_argument);
}

} // namespace
} // namespace insp
