#include "report/allocation_report.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

AllocationOutcome make_two_proc_outcome(const Fixture& f) {
  // Random placement gives several processors on this instance.
  Rng rng(11);
  return allocate(f.problem(), HeuristicKind::Random, rng);
}

TEST(AllocationReport, DotHasClustersOperatorsAndServers) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const AllocationOutcome out = make_two_proc_outcome(f);
  ASSERT_TRUE(out.success);
  const std::string dot = allocation_to_dot(f.problem(), out.allocation);
  EXPECT_NE(dot.find("digraph allocation"), std::string::npos);
  for (int u = 0; u < out.num_processors; ++u) {
    EXPECT_NE(dot.find("subgraph cluster_P" + std::to_string(u)),
              std::string::npos);
  }
  for (int op = 0; op < f.tree.num_operators(); ++op) {
    EXPECT_NE(dot.find("n" + std::to_string(op) + " [shape=box"),
              std::string::npos);
  }
  EXPECT_NE(dot.find("S0 [shape=house"), std::string::npos);
  // Crossing edges are highlighted.
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // Download streams are dashed and bandwidth-labeled.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("MB/s"), std::string::npos);
}

TEST(AllocationReport, SingleProcessorDotHasNoCrossingEdges) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Rng rng(1);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::SubtreeBottomUp, rng);
  ASSERT_TRUE(out.success);
  ASSERT_EQ(out.num_processors, 1);
  const std::string dot = allocation_to_dot(f.problem(), out.allocation);
  EXPECT_EQ(dot.find("color=red"), std::string::npos);
}

TEST(AllocationReport, UtilizationTableCoversEveryResource) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const AllocationOutcome out = make_two_proc_outcome(f);
  ASSERT_TRUE(out.success);
  const std::string table = utilization_table(f.problem(), out.allocation);
  for (int u = 0; u < out.num_processors; ++u) {
    EXPECT_NE(table.find("P" + std::to_string(u) + " cpu"),
              std::string::npos);
    EXPECT_NE(table.find("P" + std::to_string(u) + " nic"),
              std::string::npos);
  }
  for (int l = 0; l < f.platform.num_servers(); ++l) {
    EXPECT_NE(table.find("S" + std::to_string(l) + " card"),
              std::string::npos);
  }
  EXPECT_NE(table.find('%'), std::string::npos);
}

TEST(AllocationReport, UtilizationPercentagesAreSane) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Rng rng(1);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::CompGreedy, rng);
  ASSERT_TRUE(out.success);
  const std::string table = utilization_table(f.problem(), out.allocation);
  // No resource of a validated plan exceeds 100%.
  std::istringstream lines(table);
  std::string line;
  while (std::getline(lines, line)) {
    const auto p = line.find('%');
    if (p == std::string::npos || p < 5) continue;
    const double v = std::stod(line.substr(p - 5, 5));
    EXPECT_LE(v, 100.0) << line;
    EXPECT_GE(v, 0.0) << line;
  }
}

TEST(AllocationReport, PlanSummaryAggregatesPurchases) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Rng rng(11);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::Random, rng);
  ASSERT_TRUE(out.success);
  const std::string summary = plan_summary(f.problem(), out.allocation);
  EXPECT_NE(summary.find("PURCHASE PLAN"), std::string::npos);
  EXPECT_NE(summary.find("sustainable throughput"), std::string::npos);
  EXPECT_NE(summary.find("bottleneck"), std::string::npos);
  // Identical configs are aggregated with a count ("N x desc").
  EXPECT_NE(summary.find(" x "), std::string::npos);
}

} // namespace
} // namespace insp
