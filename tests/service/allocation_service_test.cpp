#include "service/allocation_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bench_support/dynamic_world.hpp"
#include "service/batch_planner.hpp"
#include "service/service_replay.hpp"

namespace insp {
namespace {

using benchx::DynamicWorld;
using benchx::make_dynamic_world;

WorkloadEvent rate_event(EventKind kind, int id, double value,
                         double time = 0.0) {
  WorkloadEvent e;
  e.time = time;
  e.kind = kind;
  if (kind == EventKind::RhoChange) {
    e.app_id = id;
    e.rho = value;
  } else {
    e.object_type = id;
    e.freq_hz = value;
  }
  return e;
}

// --- request queue ---------------------------------------------------------

TEST(RequestQueue, FifoWithinCapacity) {
  RequestQueue q(8);
  for (int i = 0; i < 5; ++i) {
    ServiceRequest r;
    r.shard = i;
    ASSERT_TRUE(q.push(std::move(r)));
  }
  EXPECT_EQ(q.size(), 5u);
  ServiceRequest out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.shard, i);
  }
}

TEST(RequestQueue, PushBlocksWhenFullUntilPop) {
  RequestQueue q(1);
  ServiceRequest r;
  r.shard = 0;
  ASSERT_TRUE(q.push(r));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ServiceRequest r2;
    r2.shard = 1;
    ASSERT_TRUE(q.push(r2));  // blocks until the consumer makes room
    second_pushed.store(true);
  });
  ServiceRequest out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.shard, 0);
  ASSERT_TRUE(q.pop(out));  // waits for the producer if necessary
  EXPECT_EQ(out.shard, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(RequestQueue, CloseDrainsThenRefuses) {
  RequestQueue q(4);
  ServiceRequest r;
  r.shard = 7;
  ASSERT_TRUE(q.push(r));
  q.close();
  EXPECT_FALSE(q.push(r));  // refused after close
  ServiceRequest out;
  ASSERT_TRUE(q.pop(out));  // pending items still drain
  EXPECT_EQ(out.shard, 7);
  EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  RequestQueue q(4);
  std::thread consumer([&] {
    ServiceRequest out;
    EXPECT_FALSE(q.pop(out));  // blocked until close, then false
  });
  q.close();
  consumer.join();
}

// --- batch planner ---------------------------------------------------------

TEST(BatchPlanner, EpochIsFloorOfTimeOverWindow) {
  EXPECT_EQ(batch_epoch(0.0, 30.0), 0);
  EXPECT_EQ(batch_epoch(29.9, 30.0), 0);
  EXPECT_EQ(batch_epoch(30.0, 30.0), 1);
  EXPECT_EQ(batch_epoch(65.0, 30.0), 2);
  EXPECT_EQ(batch_epoch(10.0, 0.0), 0);  // batching disabled
}

TEST(BatchPlanner, EpochRunsSplitOnEpochChange) {
  std::vector<WorkloadEvent> events;
  for (double t : {1.0, 5.0, 29.0, 31.0, 95.0, 96.0}) {
    events.push_back(rate_event(EventKind::RhoChange, 0, 1.0, t));
  }
  const auto runs = epoch_runs(events, 30.0);
  ASSERT_EQ(runs.size(), 3u);  // epochs 0, 1, 3
  EXPECT_EQ(runs[0], (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(runs[1], (std::pair<std::size_t, std::size_t>{3, 4}));
  EXPECT_EQ(runs[2], (std::pair<std::size_t, std::size_t>{4, 6}));
  // window <= 0: every event is its own batch.
  EXPECT_EQ(epoch_runs(events, 0.0).size(), events.size());
}

TEST(BatchPlanner, CoalesceKeepsLastUpdatePerKnob) {
  std::vector<WorkloadEvent> batch{
      rate_event(EventKind::RhoChange, 0, 0.4),
      rate_event(EventKind::RhoChange, 1, 0.6),
      rate_event(EventKind::RhoChange, 0, 0.9),
      rate_event(EventKind::ObjectRateChange, 2, 0.5),
      rate_event(EventKind::ObjectRateChange, 2, 0.7),
  };
  const CoalescedBatch out = coalesce_batch(batch);
  EXPECT_EQ(out.coalesced, 2);
  ASSERT_EQ(out.applied.size(), 3u);
  // Survivors keep the position of their last occurrence.
  EXPECT_EQ(out.applied[0].app_id, 1);
  EXPECT_DOUBLE_EQ(out.applied[1].rho, 0.9);
  EXPECT_DOUBLE_EQ(out.applied[2].freq_hz, 0.7);
}

TEST(BatchPlanner, StructuralEventsAreCoalescingBarriers) {
  WorkloadEvent departure;
  departure.kind = EventKind::AppDeparture;
  departure.app_id = 0;
  std::vector<WorkloadEvent> batch{
      rate_event(EventKind::RhoChange, 0, 0.4),
      departure,
      rate_event(EventKind::RhoChange, 0, 0.9),
  };
  const CoalescedBatch out = coalesce_batch(batch);
  // The same knob is updated twice, but never within one rate run: nothing
  // coalesces and the order is untouched.
  EXPECT_EQ(out.coalesced, 0);
  ASSERT_EQ(out.applied.size(), 3u);
  EXPECT_EQ(out.applied[1].kind, EventKind::AppDeparture);
  EXPECT_DOUBLE_EQ(out.applied[0].rho, 0.4);
  EXPECT_DOUBLE_EQ(out.applied[2].rho, 0.9);
}

TEST(BatchPlanner, IdenticalServerEventRunsCollapseToOne) {
  const auto server_event = [](EventKind kind, int server) {
    WorkloadEvent e;
    e.kind = kind;
    e.server = server;
    return e;
  };
  // A detector re-asserting a failure mid-repair: three identical failures
  // of server 2 collapse to one, but the interleaved failure of server 0
  // and the later recovery of server 2 are distinct state transitions.
  std::vector<WorkloadEvent> batch{
      server_event(EventKind::ServerFailure, 2),
      server_event(EventKind::ServerFailure, 2),
      server_event(EventKind::ServerFailure, 0),
      server_event(EventKind::ServerFailure, 2),
      server_event(EventKind::ServerRecovery, 2),
  };
  const CoalescedBatch out = coalesce_batch(batch);
  EXPECT_EQ(out.coalesced, 1);
  ASSERT_EQ(out.applied.size(), 4u);
  EXPECT_EQ(out.applied[0].kind, EventKind::ServerFailure);
  EXPECT_EQ(out.applied[0].server, 2);
  EXPECT_EQ(out.applied[1].server, 0);
  EXPECT_EQ(out.applied[2].server, 2);
  EXPECT_EQ(out.applied[3].kind, EventKind::ServerRecovery);

  // Rate updates never reorder across a server event, even a collapsed run.
  std::vector<WorkloadEvent> mixed{
      rate_event(EventKind::RhoChange, 0, 0.4),
      server_event(EventKind::ServerFailure, 1),
      server_event(EventKind::ServerFailure, 1),
      rate_event(EventKind::RhoChange, 0, 0.9),
  };
  const CoalescedBatch out2 = coalesce_batch(mixed);
  EXPECT_EQ(out2.coalesced, 1);
  ASSERT_EQ(out2.applied.size(), 3u);
  EXPECT_DOUBLE_EQ(out2.applied[0].rho, 0.4);
  EXPECT_EQ(out2.applied[1].kind, EventKind::ServerFailure);
  EXPECT_DOUBLE_EQ(out2.applied[2].rho, 0.9);
}

// --- service vs sequential reference --------------------------------------

std::vector<ShardSpec> small_shards(int count) {
  std::vector<ShardSpec> specs;
  for (int i = 0; i < count; ++i) {
    DynamicWorld world = make_dynamic_world(
        42 + 17ull * static_cast<std::uint64_t>(i), {40, 2, 24});
    specs.push_back(ShardSpec{std::move(world.apps), std::move(world.platform),
                              std::move(world.catalog),
                              std::move(world.trace)});
  }
  return specs;
}

TEST(AllocationService, InitialSnapshotPublishedOnStart) {
  ServiceOptions opt;
  opt.num_workers = 1;
  AllocationService service(small_shards(2), opt);
  service.start();
  for (int s = 0; s < service.num_shards(); ++s) {
    const auto snap = service.snapshot(s);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, 0u);
    EXPECT_TRUE(snap->initialized);
    EXPECT_EQ(snap->events_applied, 0);
    EXPECT_GT(snap->cost, 0.0);
    EXPECT_GT(snap->processors, 0);
  }
  service.finish();
}

TEST(AllocationService, RejectsOutOfRangeShard) {
  ServiceOptions opt;
  opt.num_workers = 1;
  AllocationService service(small_shards(1), opt);
  service.start();
  WorkloadEvent e = rate_event(EventKind::RhoChange, 0, 0.7);
  EXPECT_FALSE(service.submit(-1, e));
  EXPECT_FALSE(service.submit(1, e));
  EXPECT_TRUE(service.submit(0, e));
  service.finish();
}

TEST(AllocationService, MatchesSequentialReferenceForEveryWorkerCount) {
  // The same two-shard deployment driven with 1, 2 and 4 workers must land
  // on the bit-identical per-shard trajectory the sequential reference
  // computes — replay signatures AND final allocations.
  const std::vector<ShardSpec> specs = small_shards(2);
  ServiceOptions opt;
  opt.queue_capacity = 16;  // force producer backpressure too
  std::vector<ShardReplayResult> reference;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    reference.push_back(
        replay_shard_sequential(specs[s], static_cast<int>(s), opt));
    ASSERT_TRUE(reference.back().initialized);
  }

  for (int workers : {1, 2, 4}) {
    opt.num_workers = workers;
    AllocationService service(specs, opt);
    service.start();
    for (std::size_t s = 0; s < specs.size(); ++s) {
      for (const WorkloadEvent& event : specs[s].trace.events) {
        ASSERT_TRUE(service.submit(static_cast<int>(s), event));
      }
    }
    const ServiceStats stats = service.finish();

    EXPECT_EQ(stats.requests_submitted,
              specs.size() * specs[0].trace.events.size());
    EXPECT_EQ(stats.latency_seconds.size(), stats.requests_submitted);
    int ref_applied = 0, ref_coalesced = 0, ref_failures = 0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const auto snap = service.snapshot(static_cast<int>(s));
      const ShardReplayResult& ref = reference[s];
      EXPECT_EQ(snap->signature, ref.signature)
          << "shard " << s << " with " << workers << " workers";
      EXPECT_TRUE(snap->allocation == ref.final_allocation);
      EXPECT_EQ(snap->events_applied, ref.events_applied);
      EXPECT_EQ(snap->events_coalesced, ref.events_coalesced);
      EXPECT_EQ(snap->failures, ref.failures);
      EXPECT_DOUBLE_EQ(snap->cost, ref.final_cost);
      ref_applied += ref.events_applied;
      ref_coalesced += ref.events_coalesced;
      ref_failures += ref.failures;
    }
    EXPECT_EQ(stats.events_applied, ref_applied);
    EXPECT_EQ(stats.events_coalesced, ref_coalesced);
    EXPECT_EQ(stats.failures, ref_failures);
    EXPECT_EQ(static_cast<std::uint64_t>(stats.events_applied +
                                         stats.events_coalesced),
              stats.requests_submitted);
  }
}

TEST(AllocationService, BatchingDisabledAppliesEveryRequest) {
  const std::vector<ShardSpec> specs = small_shards(1);
  ServiceOptions opt;
  opt.num_workers = 2;
  opt.batch_window_s = 0.0;  // per-request application, nothing coalesces
  const ShardReplayResult reference =
      replay_shard_sequential(specs[0], 0, opt);
  EXPECT_EQ(reference.events_coalesced, 0);

  AllocationService service(specs, opt);
  service.start();
  for (const WorkloadEvent& event : specs[0].trace.events) {
    ASSERT_TRUE(service.submit(0, event));
  }
  service.finish();
  const auto snap = service.snapshot(0);
  EXPECT_EQ(snap->events_coalesced, 0);
  EXPECT_EQ(snap->events_applied,
            static_cast<int>(specs[0].trace.events.size()));
  EXPECT_EQ(snap->signature, reference.signature);
  EXPECT_TRUE(snap->allocation == reference.final_allocation);
}

TEST(AllocationService, ShardSeedIsStablePerShard) {
  EXPECT_EQ(shard_seed(42, 0), shard_seed(42, 0));
  EXPECT_NE(shard_seed(42, 0), shard_seed(42, 1));
  EXPECT_NE(shard_seed(42, 0), shard_seed(43, 0));
}

} // namespace
} // namespace insp
