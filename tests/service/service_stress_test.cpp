// Concurrency stress for the allocation service: one producer thread per
// shard blasting the shard's trace through the bounded queue, several query
// threads hammering the lock-free snapshots the whole time, and worker
// counts beyond the shard count — then the per-shard trajectory is checked
// bit for bit against the sequential reference.  This binary is the core of
// the ThreadSanitizer CI job (INSP_TSAN), so every synchronization path of
// src/service/ runs under TSan on every PR.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_support/dynamic_world.hpp"
#include "service/allocation_service.hpp"
#include "service/service_replay.hpp"

namespace insp {
namespace {

using benchx::DynamicWorld;
using benchx::make_dynamic_world;

std::vector<ShardSpec> stress_shards(int count, int n_ops, int events) {
  std::vector<ShardSpec> specs;
  for (int i = 0; i < count; ++i) {
    DynamicWorld world = make_dynamic_world(
        42 + 977ull * static_cast<std::uint64_t>(i), {n_ops, 2, events});
    specs.push_back(ShardSpec{std::move(world.apps), std::move(world.platform),
                              std::move(world.catalog),
                              std::move(world.trace)});
  }
  return specs;
}

/// Drives one full service run with producers + query threads; returns the
/// per-shard signatures observed after drain.
std::vector<std::uint64_t> run_service(const std::vector<ShardSpec>& specs,
                                       const ServiceOptions& opt,
                                       int query_threads) {
  AllocationService service(specs, opt);
  service.start();

  std::atomic<bool> stop_queries{false};
  std::vector<std::thread> queries;
  for (int t = 0; t < query_threads; ++t) {
    queries.emplace_back([&service, &stop_queries, t] {
      // Readers check what lock-free snapshots guarantee: never null, never
      // torn (version/applied counts monotonic per shard, allocation
      // internally consistent with its own scalar fields).
      const int shard =
          t % (service.num_shards() > 0 ? service.num_shards() : 1);
      std::uint64_t last_version = 0;
      int last_applied = 0;
      while (!stop_queries.load()) {
        const auto snap = service.snapshot(shard);
        ASSERT_NE(snap, nullptr);
        ASSERT_GE(snap->version, last_version);
        ASSERT_GE(snap->events_applied, last_applied);
        ASSERT_EQ(snap->processors,
                  static_cast<int>(snap->allocation.processors.size()));
        ASSERT_GE(snap->cost, 0.0);
        last_version = snap->version;
        last_applied = snap->events_applied;
      }
    });
  }

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    producers.emplace_back([&service, &specs, s] {
      for (const WorkloadEvent& event : specs[s].trace.events) {
        ASSERT_TRUE(service.submit(static_cast<int>(s), event));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  const ServiceStats stats = service.finish();
  stop_queries.store(true);
  for (std::thread& t : queries) t.join();

  EXPECT_EQ(stats.requests_submitted,
            specs.size() * specs[0].trace.events.size());
  EXPECT_EQ(static_cast<std::uint64_t>(stats.events_applied +
                                       stats.events_coalesced),
            stats.requests_submitted);
  EXPECT_EQ(stats.latency_seconds.size(), stats.requests_submitted);
  for (double latency : stats.latency_seconds) EXPECT_GE(latency, 0.0);

  std::vector<std::uint64_t> signatures;
  for (int s = 0; s < service.num_shards(); ++s) {
    const auto snap = service.snapshot(s);
    signatures.push_back(snap->signature);
    // Final snapshots match the reference allocation checked by the caller.
    EXPECT_TRUE(snap->initialized);
  }
  return signatures;
}

TEST(ServiceStress, ConcurrentRunIsBitIdenticalToSequentialReplay) {
  // 4 shards x 60 events, tight queue (forces producer backpressure), more
  // workers than cores on most CI boxes — then the whole thing again with
  // different worker counts: every run must land on the same signatures.
  const std::vector<ShardSpec> specs = stress_shards(4, 48, 60);
  ServiceOptions opt;
  opt.queue_capacity = 32;

  std::vector<ShardReplayResult> reference;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    reference.push_back(
        replay_shard_sequential(specs[s], static_cast<int>(s), opt));
    ASSERT_TRUE(reference.back().initialized);
  }

  for (int workers : {1, 4, 8}) {
    opt.num_workers = workers;
    const std::vector<std::uint64_t> signatures =
        run_service(specs, opt, /*query_threads=*/3);
    ASSERT_EQ(signatures.size(), specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
      EXPECT_EQ(signatures[s], reference[s].signature)
          << "shard " << s << " diverged with " << workers << " workers";
    }
  }
}

TEST(ServiceStress, ManyWorkersFewShardsKeepOrdering) {
  // More workers than shards maximizes the pop-reordering window the
  // sequence numbers exist to fix; single-event epochs (window 0) make
  // every request an independent application so any ordering slip would
  // change the trajectory.
  const std::vector<ShardSpec> specs = stress_shards(2, 40, 48);
  ServiceOptions opt;
  opt.num_workers = 8;
  opt.queue_capacity = 8;
  opt.batch_window_s = 0.0;
  std::vector<ShardReplayResult> reference;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    reference.push_back(
        replay_shard_sequential(specs[s], static_cast<int>(s), opt));
  }
  const std::vector<std::uint64_t> signatures =
      run_service(specs, opt, /*query_threads=*/2);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    EXPECT_EQ(signatures[s], reference[s].signature) << "shard " << s;
  }
}

} // namespace
} // namespace insp
