#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "sim/flow_analyzer.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

Allocation one_proc([[maybe_unused]] const Fixture& f,
                    ProcessorConfig cfg) {
  Allocation a;
  PurchasedProcessor p;
  p.config = cfg;
  p.ops = {0, 1, 2, 3, 4};
  p.downloads = {{0, 0}, {1, 0}, {2, 0}};
  a.processors.push_back(p);
  a.op_to_proc = {0, 0, 0, 0, 0};
  return a;
}

TEST(EventSim, SustainsTargetOnValidSingleProcessor) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_TRUE(r.sustained);
  EXPECT_NEAR(r.achieved_throughput, 1.0, 0.02);
  EXPECT_GE(r.first_output_period, 0);
}

TEST(EventSim, PipelineLatencyGrowsWithCrossProcessorDepth) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  // Split: n1|n2 on P0, rest on P1 -> one crossing edge adds transfer lag.
  Allocation split;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3};
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  split.processors = {p0, p1};
  split.op_to_proc = {1, 1, 1, 0, 0};

  const EventSimResult colocated =
      simulate_allocation(f.problem(), one_proc(f, f.catalog.most_expensive()));
  const EventSimResult crossed = simulate_allocation(f.problem(), split);
  EXPECT_TRUE(crossed.sustained);
  EXPECT_GT(crossed.first_output_period, colocated.first_output_period);
}

TEST(EventSim, DetectsCpuOversubscription) {
  // Force an over-capacity processor by shrinking the catalog's CPU.
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.catalog = PriceCatalog(10.0, {{100.0, 0.0}}, {{2500.0, 0.0}});
  const Allocation a = one_proc(f, f.catalog.cheapest());
  // Total work 250 Mops on 100 Mops/s -> at most 0.4 results/s.
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_FALSE(r.sustained);
  EXPECT_NEAR(r.achieved_throughput, 0.4, 0.05);
}

TEST(EventSim, DetectsCommOversubscription) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  // NIC 30 MB/s: the crossing edge n2->n5 (40 MB) cannot keep up.
  f.catalog = PriceCatalog(10.0, {{50000.0, 0.0}}, {{30.0, 0.0}});
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.cheapest();
  p0.ops = {4, 3};
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.cheapest();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {1, 1, 1, 0, 0};
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_FALSE(r.sustained);
  // (30 - 15 dl) MB/s over a 40 MB edge -> ~0.375 results/s.
  EXPECT_LT(r.achieved_throughput, 0.5);
}

TEST(EventSim, AgreesWithFlowAnalyzerOnHeuristicPlans) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 20, 1.2);
    Rng rng(seed);
    const AllocationOutcome out =
        allocate(f.problem(), HeuristicKind::CommGreedy, rng);
    if (!out.success) continue;
    const FlowAnalysis flow = analyze_flow(f.problem(), out.allocation);
    const EventSimResult sim = simulate_allocation(f.problem(), out.allocation);
    // A valid plan (rho* >= 1) must sustain the simulated target.
    ASSERT_GE(flow.max_throughput, 1.0 - 1e-9);
    EXPECT_TRUE(sim.sustained) << "seed " << seed << " achieved "
                               << sim.achieved_throughput;
  }
}

TEST(EventSim, ThroughputCappedAtTarget) {
  // Even with huge headroom the pipeline produces one result per period.
  const Fixture f = fig1a_fixture(0.5, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_LE(r.achieved_throughput, 1.0 + 0.02);
}

// Parameterized sweep: the backpressure bound must not throttle *valid*
// allocations once it exceeds the pipeline latency, for colocated and
// split plans alike.
class EventSimBackpressure
    : public testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(EventSimBackpressure, ValidPlansSustainTargetWhenBoundCoversLatency) {
  const auto [max_ahead, split] = GetParam();
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a;
  if (split) {
    PurchasedProcessor p0, p1;
    p0.config = f.catalog.most_expensive();
    p0.ops = {4, 3};
    p0.downloads = {{0, 0}, {1, 0}};
    p1.config = f.catalog.most_expensive();
    p1.ops = {0, 1, 2};
    p1.downloads = {{1, 0}, {2, 0}};
    a.processors = {p0, p1};
    a.op_to_proc = {1, 1, 1, 0, 0};
  } else {
    a = one_proc(f, f.catalog.most_expensive());
  }
  EventSimConfig cfg;
  cfg.max_results_ahead = max_ahead;
  const EventSimResult r = simulate_allocation(f.problem(), a, cfg);
  // A crossing hop has ~3 periods of latency: bounds >= 4 must sustain; a
  // colocated plan sustains from bound 2 already.
  if (max_ahead >= 4 || (!split && max_ahead >= 2)) {
    EXPECT_TRUE(r.sustained)
        << "max_ahead=" << max_ahead << " split=" << split << " achieved "
        << r.achieved_throughput;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, EventSimBackpressure,
    testing::Combine(testing::Values(2, 4, 6, 8),
                     testing::Values(false, true)),
    [](const auto& param_info) {
      return "ahead" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ? "_split" : "_colocated");
    });

TEST(EventSim, RespectsConfiguredPeriods) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  EventSimConfig cfg;
  cfg.periods = 50;
  cfg.warmup_periods = 10;
  const EventSimResult r = simulate_allocation(f.problem(), a, cfg);
  EXPECT_LE(r.results_produced, 50);
  EXPECT_GT(r.results_produced, 30);
}

// ---------------------------------------------------------------------------
// Degenerate configs: the seed implementation read the warmup snapshot
// through std::map::operator[], silently default-inserting 0 whenever
// warmup_periods >= periods, and measured the whole run (warmup included)
// without telling anyone.  The config is now validated and the result
// clearly flagged.
// ---------------------------------------------------------------------------

TEST(EventSim, WarmupBeyondPeriodsIsFlaggedDegenerate) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  EventSimConfig cfg;
  cfg.periods = 50;
  cfg.warmup_periods = 100;  // >= periods: no measurement window left
  const EventSimResult r = simulate_allocation(f.problem(), a, cfg);
  EXPECT_TRUE(r.degenerate_config);
  EXPECT_EQ(r.warmup_periods_used, 0);  // clamped: whole run measured
  EXPECT_GT(r.results_produced, 0);
  // The whole-run rate includes the pipeline-fill transient, so it is
  // meaningful but below the steady-state figure.
  EXPECT_GT(r.achieved_throughput, 0.5);
  EXPECT_LE(r.achieved_throughput, 1.0 + 0.02);
}

TEST(EventSim, NonPositivePeriodsIsFlaggedDegenerate) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  EventSimConfig cfg;
  cfg.periods = 0;
  const EventSimResult r = simulate_allocation(f.problem(), a, cfg);
  EXPECT_TRUE(r.degenerate_config);
  EXPECT_EQ(r.results_produced, 0);
  EXPECT_FALSE(r.sustained);
  EXPECT_EQ(r.first_output_period, -1);
}

TEST(EventSim, UnassignedOperatorsAreFlaggedDegenerate) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a = one_proc(f, f.catalog.most_expensive());
  a.op_to_proc[2] = kNoNode;
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_TRUE(r.degenerate_config);
  EXPECT_EQ(r.results_produced, 0);
  EXPECT_FALSE(r.sustained);
}

TEST(EventSim, SustainedToleranceIsConfigurable) {
  // An over-subscribed processor achieving ~0.4 results/s: unsustained at
  // the default 0.99 fraction, sustained when the caller only requires 35%.
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.catalog = PriceCatalog(10.0, {{100.0, 0.0}}, {{2500.0, 0.0}});
  const Allocation a = one_proc(f, f.catalog.cheapest());
  EventSimConfig lax;
  lax.sustained_fraction = 0.35;
  EXPECT_FALSE(simulate_allocation(f.problem(), a).sustained);
  EXPECT_TRUE(simulate_allocation(f.problem(), a, lax).sustained);

  // And a strict fraction above 1 rejects even a perfectly valid plan.
  const Fixture ok = fig1a_fixture(1.0, 10.0);
  const Allocation good = one_proc(ok, ok.catalog.most_expensive());
  EventSimConfig strict;
  strict.sustained_fraction = 1.05;
  EXPECT_FALSE(simulate_allocation(ok.problem(), good, strict).sustained);
}

// ---------------------------------------------------------------------------
// Deep pipelines: a chain of D crossing edges needs ~2D periods to fill.
// The seed defaults measured from period 100 regardless, so a valid
// allocation whose pipeline fills later was reported unsustained.  The
// derived defaults size the warmup (and the backpressure bound's slack)
// from the allocation's crossing-edge pipeline depth.
// ---------------------------------------------------------------------------

/// Chain of `depth` operators, exactly-sized one-op-per-processor
/// allocation: every edge crosses, every budget is tight but sufficient.
struct ChainWorld {
  OperatorTree tree;
  Platform platform;
  PriceCatalog catalog;
  Allocation alloc;

  explicit ChainWorld(int depth)
      : tree(make_tree(depth)),
        platform({{0, 100000.0, {0}}}, 100000.0, 10.5, 1),
        catalog(10.0, {{10.0, 0.0}}, {{30.0, 0.0}}) {
    alloc.op_to_proc.resize(static_cast<std::size_t>(depth));
    for (int i = 0; i < depth; ++i) {
      PurchasedProcessor p;
      p.config = ProcessorConfig{0, 0};
      p.ops = {i};
      if (!tree.object_types_of(i).empty()) p.downloads = {{0, 0}};
      alloc.processors.push_back(p);
      alloc.op_to_proc[static_cast<std::size_t>(i)] = i;
    }
  }

  static OperatorTree make_tree(int depth) {
    ObjectCatalog objects({{0, 10.0, 0.5}});
    TreeBuilder b(objects);
    int prev = b.add_operator(kNoNode);
    for (int i = 1; i < depth; ++i) prev = b.add_operator(prev);
    b.add_leaf(prev, 0);
    return b.build(1.0);  // w = 10 Mops, delta = 10 MB everywhere
  }

  Problem problem() const {
    Problem p;
    p.tree = &tree;
    p.platform = &platform;
    p.catalog = &catalog;
    p.rho = 1.0;
    return p;
  }
};

TEST(EventSim, DeepChainThrottledByLegacyDefaultsSustainsWithDerived) {
  const ChainWorld w(60);  // 59 crossing edges -> fill depth 118 periods
  const FlowAnalysis flow = analyze_flow(w.problem(), w.alloc);
  ASSERT_GE(flow.max_throughput, 1.0 - 1e-9);  // the plan is valid

  // Seed-era fixed defaults: warmup 100 < fill 118, bound 4.
  EventSimConfig legacy;
  legacy.periods = 400;
  legacy.warmup_periods = 100;
  legacy.max_results_ahead = 4;
  const EventSimResult old = simulate_allocation(w.problem(), w.alloc, legacy);
  EXPECT_FALSE(old.sustained) << "achieved " << old.achieved_throughput;
  EXPECT_GT(old.first_output_period, legacy.warmup_periods);

  // Derived defaults: warmup covers the fill, bound gains depth slack.
  const EventSimResult now = simulate_allocation(w.problem(), w.alloc);
  EXPECT_TRUE(now.sustained) << "achieved " << now.achieved_throughput;
  EXPECT_FALSE(now.degenerate_config);
  EXPECT_GE(now.warmup_periods_used, now.first_output_period);
  EXPECT_GT(now.max_results_ahead_used, 4);  // depth-scaled slack
}

TEST(EventSim, PipelineTooDeepForExplicitConfigIsFlagged) {
  const ChainWorld w(30);  // fill depth 58: no output within 40 periods
  EventSimConfig cfg;
  cfg.periods = 40;
  cfg.warmup_periods = 10;
  const EventSimResult r = simulate_allocation(w.problem(), w.alloc, cfg);
  EXPECT_TRUE(r.degenerate_config);
  EXPECT_EQ(r.results_produced, 0);
  EXPECT_FALSE(r.sustained);
}

TEST(EventSim, AutoWarmupMatchesFixedDefaultsOnShallowPipelines) {
  // For the paper-sized instances the derived warmup resolves to the same
  // 100-of-400 window the seed hardcoded.
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_EQ(r.warmup_periods_used, 100);
  EXPECT_FALSE(r.degenerate_config);
}

// ---------------------------------------------------------------------------
// Degraded platform views (SimPlatformView).
// ---------------------------------------------------------------------------

TEST(EventSim, DownloadRouteOnDownServerStarvesTheAllocation) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  SimPlatformView view = SimPlatformView::uniform(f.platform);
  view.set_server_up(0, false);  // every route of this alloc points at S0
  const EventSimResult r = simulate_allocation(f.problem(), a, view);
  EXPECT_FALSE(r.sustained);
  EXPECT_EQ(r.results_produced, 0);
  EXPECT_EQ(r.first_output_period, -1);
}

TEST(EventSim, RoutesOnHealthyReplicaUnaffectedByOtherFailure) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a = one_proc(f, f.catalog.most_expensive());
  for (auto& route : a.processors[0].downloads) route.server = 1;
  SimPlatformView view = SimPlatformView::uniform(f.platform);
  view.set_server_up(0, false);  // the failed server serves nothing here
  const EventSimResult r = simulate_allocation(f.problem(), a, view);
  EXPECT_TRUE(r.sustained);
}

TEST(EventSim, PerPairLinkOverrideThrottlesCrossingEdge) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation split;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3};
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  split.processors = {p0, p1};
  split.op_to_proc = {1, 1, 1, 0, 0};

  SimPlatformView healthy = SimPlatformView::uniform(f.platform);
  EXPECT_TRUE(simulate_allocation(f.problem(), split, healthy).sustained);

  SimPlatformView slow = healthy;
  slow.set_link_bandwidth(0, 1, 5.0);  // the n2->n5 edge moves 40 MB/period
  const EventSimResult r = simulate_allocation(f.problem(), split, slow);
  EXPECT_FALSE(r.sustained);
  EXPECT_LT(r.achieved_throughput, 0.5);
}

} // namespace
} // namespace insp
