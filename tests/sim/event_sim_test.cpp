#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "sim/flow_analyzer.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

Allocation one_proc([[maybe_unused]] const Fixture& f,
                    ProcessorConfig cfg) {
  Allocation a;
  PurchasedProcessor p;
  p.config = cfg;
  p.ops = {0, 1, 2, 3, 4};
  p.downloads = {{0, 0}, {1, 0}, {2, 0}};
  a.processors.push_back(p);
  a.op_to_proc = {0, 0, 0, 0, 0};
  return a;
}

TEST(EventSim, SustainsTargetOnValidSingleProcessor) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_TRUE(r.sustained);
  EXPECT_NEAR(r.achieved_throughput, 1.0, 0.02);
  EXPECT_GE(r.first_output_period, 0);
}

TEST(EventSim, PipelineLatencyGrowsWithCrossProcessorDepth) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  // Split: n1|n2 on P0, rest on P1 -> one crossing edge adds transfer lag.
  Allocation split;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3};
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  split.processors = {p0, p1};
  split.op_to_proc = {1, 1, 1, 0, 0};

  const EventSimResult colocated =
      simulate_allocation(f.problem(), one_proc(f, f.catalog.most_expensive()));
  const EventSimResult crossed = simulate_allocation(f.problem(), split);
  EXPECT_TRUE(crossed.sustained);
  EXPECT_GT(crossed.first_output_period, colocated.first_output_period);
}

TEST(EventSim, DetectsCpuOversubscription) {
  // Force an over-capacity processor by shrinking the catalog's CPU.
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.catalog = PriceCatalog(10.0, {{100.0, 0.0}}, {{2500.0, 0.0}});
  const Allocation a = one_proc(f, f.catalog.cheapest());
  // Total work 250 Mops on 100 Mops/s -> at most 0.4 results/s.
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_FALSE(r.sustained);
  EXPECT_NEAR(r.achieved_throughput, 0.4, 0.05);
}

TEST(EventSim, DetectsCommOversubscription) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  // NIC 30 MB/s: the crossing edge n2->n5 (40 MB) cannot keep up.
  f.catalog = PriceCatalog(10.0, {{50000.0, 0.0}}, {{30.0, 0.0}});
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.cheapest();
  p0.ops = {4, 3};
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.cheapest();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {1, 1, 1, 0, 0};
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_FALSE(r.sustained);
  // (30 - 15 dl) MB/s over a 40 MB edge -> ~0.375 results/s.
  EXPECT_LT(r.achieved_throughput, 0.5);
}

TEST(EventSim, AgreesWithFlowAnalyzerOnHeuristicPlans) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 20, 1.2);
    Rng rng(seed);
    const AllocationOutcome out =
        allocate(f.problem(), HeuristicKind::CommGreedy, rng);
    if (!out.success) continue;
    const FlowAnalysis flow = analyze_flow(f.problem(), out.allocation);
    const EventSimResult sim = simulate_allocation(f.problem(), out.allocation);
    // A valid plan (rho* >= 1) must sustain the simulated target.
    ASSERT_GE(flow.max_throughput, 1.0 - 1e-9);
    EXPECT_TRUE(sim.sustained) << "seed " << seed << " achieved "
                               << sim.achieved_throughput;
  }
}

TEST(EventSim, ThroughputCappedAtTarget) {
  // Even with huge headroom the pipeline produces one result per period.
  const Fixture f = fig1a_fixture(0.5, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  const EventSimResult r = simulate_allocation(f.problem(), a);
  EXPECT_LE(r.achieved_throughput, 1.0 + 0.02);
}

// Parameterized sweep: the backpressure bound must not throttle *valid*
// allocations once it exceeds the pipeline latency, for colocated and
// split plans alike.
class EventSimBackpressure
    : public testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(EventSimBackpressure, ValidPlansSustainTargetWhenBoundCoversLatency) {
  const auto [max_ahead, split] = GetParam();
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a;
  if (split) {
    PurchasedProcessor p0, p1;
    p0.config = f.catalog.most_expensive();
    p0.ops = {4, 3};
    p0.downloads = {{0, 0}, {1, 0}};
    p1.config = f.catalog.most_expensive();
    p1.ops = {0, 1, 2};
    p1.downloads = {{1, 0}, {2, 0}};
    a.processors = {p0, p1};
    a.op_to_proc = {1, 1, 1, 0, 0};
  } else {
    a = one_proc(f, f.catalog.most_expensive());
  }
  EventSimConfig cfg;
  cfg.max_results_ahead = max_ahead;
  const EventSimResult r = simulate_allocation(f.problem(), a, cfg);
  // A crossing hop has ~3 periods of latency: bounds >= 4 must sustain; a
  // colocated plan sustains from bound 2 already.
  if (max_ahead >= 4 || (!split && max_ahead >= 2)) {
    EXPECT_TRUE(r.sustained)
        << "max_ahead=" << max_ahead << " split=" << split << " achieved "
        << r.achieved_throughput;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, EventSimBackpressure,
    testing::Combine(testing::Values(2, 4, 6, 8),
                     testing::Values(false, true)),
    [](const auto& param_info) {
      return "ahead" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ? "_split" : "_colocated");
    });

TEST(EventSim, RespectsConfiguredPeriods) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  EventSimConfig cfg;
  cfg.periods = 50;
  cfg.warmup_periods = 10;
  const EventSimResult r = simulate_allocation(f.problem(), a, cfg);
  EXPECT_LE(r.results_produced, 50);
  EXPECT_GT(r.results_produced, 30);
}

} // namespace
} // namespace insp
