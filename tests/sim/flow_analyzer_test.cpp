#include "sim/flow_analyzer.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "core/constraints.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

Allocation one_proc([[maybe_unused]] const Fixture& f,
                    ProcessorConfig cfg) {
  Allocation a;
  PurchasedProcessor p;
  p.config = cfg;
  p.ops = {0, 1, 2, 3, 4};
  p.downloads = {{0, 0}, {1, 0}, {2, 0}};
  a.processors.push_back(p);
  a.op_to_proc = {0, 0, 0, 0, 0};
  return a;
}

TEST(FlowAnalyzer, CpuBottleneckExactValue) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  const FlowAnalysis flow = analyze_flow(f.problem(), a);
  // Total work = 30+40+40+50+90 = 250 Mops on 46,880 Mops/s.
  EXPECT_TRUE(flow.downloads_feasible);
  EXPECT_EQ(flow.bottleneck, BottleneckKind::ProcessorCpu);
  EXPECT_NEAR(flow.max_throughput, 46880.0 / 250.0, 1e-9);
}

TEST(FlowAnalyzer, NicBottleneckWhenCommCrosses) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.cheapest();  // 1 Gbps = 125 MB/s
  p0.ops = {4, 3};
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {1, 1, 1, 0, 0};
  const FlowAnalysis flow = analyze_flow(f.problem(), a);
  // P0 NIC: fixed downloads 15 MB/s, linear 40 MB (edge n2->n5) per result:
  // rho* from that card = (125-15)/40 = 2.75. CPU on P0: 46880... cheapest
  // CPU 11720/70 = 167; P1 CPU 46880/180 = 260; so NIC binds at 2.75.
  EXPECT_EQ(flow.bottleneck, BottleneckKind::ProcessorNic);
  EXPECT_NEAR(flow.max_throughput, (125.0 - 15.0) / 40.0, 1e-9);
  EXPECT_NE(flow.bottleneck_detail.find("P0"), std::string::npos);
}

TEST(FlowAnalyzer, InfeasibleDownloadsGiveZero) {
  const Fixture f = fig1a_fixture(1.0, 480.0);  // rates 240..720 MB/s
  const Allocation a = one_proc(f, f.catalog.cheapest());  // 125 MB/s card
  const FlowAnalysis flow = analyze_flow(f.problem(), a);
  EXPECT_FALSE(flow.downloads_feasible);
  EXPECT_DOUBLE_EQ(flow.max_throughput, 0.0);
  EXPECT_EQ(flow.bottleneck, BottleneckKind::InfeasibleDownloads);
}

TEST(FlowAnalyzer, ProcProcLinkBottleneck) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.platform = testhelpers::simple_platform({{0, 1, 2}}, 3, 10000.0, 1000.0,
                                            /*link_pp=*/60.0);
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3};
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {1, 1, 1, 0, 0};
  const FlowAnalysis flow = analyze_flow(f.problem(), a);
  // Link P0<->P1 carries 40 MB per result with capacity 60 -> rho* = 1.5.
  EXPECT_EQ(flow.bottleneck, BottleneckKind::ProcProcLink);
  EXPECT_NEAR(flow.max_throughput, 1.5, 1e-9);
}

TEST(FlowAnalyzer, ServerSideConstraintsAreFixedShares) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  // Distinct downloads: 5 + 10 + 15 = 30 MB/s; card 31 barely fits.
  f.platform = testhelpers::simple_platform({{0, 1, 2}}, 3, /*card=*/31.0);
  const Allocation a = one_proc(f, f.catalog.most_expensive());
  const FlowAnalysis flow = analyze_flow(f.problem(), a);
  EXPECT_TRUE(flow.downloads_feasible);
  // Server card nearly full but downloads are rho-independent: the CPU
  // still sets rho*.
  EXPECT_EQ(flow.bottleneck, BottleneckKind::ProcessorCpu);
  // Shrinking the card below the fixed demand flips to infeasible.
  f.platform = testhelpers::simple_platform({{0, 1, 2}}, 3, /*card=*/29.0);
  const FlowAnalysis bad = analyze_flow(f.problem(), a);
  EXPECT_FALSE(bad.downloads_feasible);
}

TEST(FlowAnalyzer, AgreementWithConstraintChecker) {
  // Property: checker passes at rho exactly when rho <= rho*.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 25, 1.3);
    Rng rng(seed);
    const AllocationOutcome out =
        allocate(f.problem(), HeuristicKind::SubtreeBottomUp, rng);
    if (!out.success) continue;
    const FlowAnalysis flow = analyze_flow(f.problem(), out.allocation);
    EXPECT_GE(flow.max_throughput, f.rho - 1e-6) << "seed " << seed;

    // Scale the demand up beyond rho*: the checker must reject.
    Problem harder = f.problem();
    harder.rho = flow.max_throughput * 1.05;
    const CheckReport r = check_allocation(harder, out.allocation);
    EXPECT_FALSE(r.ok()) << "seed " << seed << " rho* " << flow.max_throughput;

    // Slightly below rho*: the checker must accept (if downloads fit, which
    // they do since the original allocation was valid).
    Problem easier = f.problem();
    easier.rho = flow.max_throughput * 0.95;
    EXPECT_TRUE(check_allocation(easier, out.allocation).ok())
        << "seed " << seed;
  }
}

TEST(FlowAnalyzer, BottleneckKindNames) {
  EXPECT_STREQ(to_string(BottleneckKind::ProcessorCpu), "processor-cpu");
  EXPECT_STREQ(to_string(BottleneckKind::InfeasibleDownloads),
               "infeasible-downloads");
}

} // namespace
} // namespace insp
