// Differential oracle suite: the sparse pre-indexed simulator core and the
// compiled-in dense reference must agree *bit-exactly* — same results
// produced, same first output period, same achieved throughput, same
// sustained verdict — across randomized trees, forests, degraded platforms
// and degenerate configs.  Any divergence means the sparse core changed
// semantics, not just data layout.
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "dynamic/scenario_engine.hpp"
#include "multi/multi_app.hpp"
#include "sim/event_sim.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::random_fixture;

void expect_cores_agree(const Problem& problem, const Allocation& alloc,
                        const SimPlatformView& view,
                        const EventSimConfig& config,
                        const std::string& label) {
  const EventSimResult sparse =
      simulate_allocation(problem, alloc, view, config);
  const EventSimResult dense =
      simulate_allocation_dense_reference(problem, alloc, view, config);
  EXPECT_EQ(sparse.results_produced, dense.results_produced) << label;
  EXPECT_EQ(sparse.first_output_period, dense.first_output_period) << label;
  EXPECT_EQ(sparse.sustained, dense.sustained) << label;
  EXPECT_EQ(sparse.degenerate_config, dense.degenerate_config) << label;
  EXPECT_EQ(sparse.warmup_periods_used, dense.warmup_periods_used) << label;
  EXPECT_EQ(sparse.max_results_ahead_used, dense.max_results_ahead_used)
      << label;
  // Bit-exact, not approximately equal: both cores must execute the same
  // arithmetic in the same order.
  EXPECT_EQ(sparse.achieved_throughput, dense.achieved_throughput) << label;
}

TEST(SimDifferential, RandomizedHeuristicPlans) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Fixture f = random_fixture(seed, 24, 1.2);
    for (const HeuristicKind kind :
         {HeuristicKind::CommGreedy, HeuristicKind::SubtreeBottomUp}) {
      Rng rng(seed);
      const AllocationOutcome out = allocate(f.problem(), kind, rng);
      if (!out.success) continue;
      expect_cores_agree(f.problem(), out.allocation,
                         SimPlatformView::uniform(f.platform), {},
                         "seed " + std::to_string(seed));
    }
  }
}

TEST(SimDifferential, OversubscribedPlansAgreeOnTheFailure) {
  // Backpressure, token queues and partial progress all engage when a
  // resource is over-subscribed; the cores must tell the same story.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Fixture f = random_fixture(seed, 20, 1.4);
    f.catalog = PriceCatalog(10.0, {{400.0, 0.0}}, {{120.0, 0.0}});
    Rng rng(seed);
    const AllocationOutcome out =
        allocate(f.problem(), HeuristicKind::CompGreedy, rng);
    if (!out.success) continue;
    expect_cores_agree(f.problem(), out.allocation,
                       SimPlatformView::uniform(f.platform), {},
                       "seed " + std::to_string(seed));
  }
}

TEST(SimDifferential, MultiApplicationForests) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Fixture base = random_fixture(seed, 12, 1.1);
    std::vector<ApplicationSpec> apps;
    apps.push_back({base.tree, 1.0});
    apps.push_back({base.tree, 0.5});
    apps.push_back({base.tree, 1.5});
    const CombinedApplication combined = combine_applications(apps);

    Problem prob;
    prob.tree = &combined.forest;
    prob.platform = &base.platform;
    prob.catalog = &base.catalog;
    prob.rho = 1.0;

    Rng rng(seed);
    const AllocationOutcome out =
        allocate(prob, HeuristicKind::SubtreeBottomUp, rng);
    if (!out.success) continue;
    expect_cores_agree(prob, out.allocation,
                       SimPlatformView::uniform(base.platform), {},
                       "forest seed " + std::to_string(seed));
  }
}

TEST(SimDifferential, DegradedPlatformInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = random_fixture(seed, 24, 1.2);
    Rng rng(seed);
    const AllocationOutcome out =
        allocate(f.problem(), HeuristicKind::SubtreeBottomUp, rng);
    if (!out.success) continue;

    // Fail a random server and slow a random processor pair: the verdict
    // may flip to unsustained, but both cores must flip identically.
    SimPlatformView view = SimPlatformView::uniform(f.platform);
    Rng damage(seed ^ 0xD16EA5EDull);
    view.set_server_up(
        static_cast<int>(damage.index(
            static_cast<std::size_t>(f.platform.num_servers()))),
        false);
    const int n_procs = out.allocation.num_processors();
    if (n_procs >= 2) {
      const int u = static_cast<int>(
          damage.index(static_cast<std::size_t>(n_procs)));
      const int v = (u + 1) % n_procs;
      view.set_link_bandwidth(u, v, 2.0);
    }
    expect_cores_agree(f.problem(), out.allocation, view, {},
                       "degraded seed " + std::to_string(seed));
  }
}

TEST(SimDifferential, TightBackpressureBounds) {
  const Fixture f = random_fixture(3, 24, 1.2);
  Rng rng(3);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::CommGreedy, rng);
  ASSERT_TRUE(out.success);
  for (int bound : {1, 2, 3}) {
    EventSimConfig cfg;
    cfg.max_results_ahead = bound;
    expect_cores_agree(f.problem(), out.allocation,
                       SimPlatformView::uniform(f.platform), cfg,
                       "bound " + std::to_string(bound));
  }
}

TEST(SimDifferential, DegenerateConfigs) {
  const Fixture f = random_fixture(1, 16, 1.2);
  Rng rng(1);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::SubtreeBottomUp, rng);
  ASSERT_TRUE(out.success);
  const SimPlatformView view = SimPlatformView::uniform(f.platform);
  EventSimConfig no_window;
  no_window.periods = 40;
  no_window.warmup_periods = 40;
  expect_cores_agree(f.problem(), out.allocation, view, no_window,
                     "warmup == periods");
  EventSimConfig empty;
  empty.periods = 0;
  expect_cores_agree(f.problem(), out.allocation, view, empty, "0 periods");
}

TEST(SimDifferential, ScenarioReplayIdenticalAcrossThreadCounts) {
  // The scenario engine runs the simulator in worker threads over fixed
  // slots; every outcome — including the simulator verdicts — must be
  // identical for any thread count.
  const Fixture base = random_fixture(7, 10, 1.0);
  std::vector<ApplicationSpec> apps;
  apps.push_back({base.tree, 0.5});
  apps.push_back({base.tree, 0.5});

  Rng gen(99);
  TraceGenConfig tg;
  tg.num_events = 30;
  EventTrace trace = generate_trace(gen, tg, static_cast<int>(apps.size()),
                                    0.5, base.platform, base.tree.catalog());

  ScenarioOptions serial;
  serial.num_threads = 1;
  ScenarioOptions parallel = serial;
  parallel.num_threads = 4;
  const ScenarioResult a = replay_trace(apps, base.platform, base.catalog,
                                        trace, serial);
  const ScenarioResult b = replay_trace(apps, base.platform, base.catalog,
                                        trace, parallel);
  EXPECT_EQ(a.signature, b.signature);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].simulated, b.outcomes[i].simulated) << i;
    EXPECT_EQ(a.outcomes[i].sustained, b.outcomes[i].sustained) << i;
  }
  EXPECT_EQ(a.summary.sustained, b.summary.sustained);
  EXPECT_EQ(a.summary.simulated, b.summary.simulated);
}

} // namespace
} // namespace insp
