// Shared fixtures for the test suite: hand-built trees with known loads,
// platforms with controlled capacities, and convenience wrappers that keep
// Problem's pointers alive.
#pragma once

#include <memory>
#include <vector>

#include "core/problem.hpp"
#include "platform/server_distribution.hpp"
#include "tree/tree_generator.hpp"

namespace insp::testhelpers {

/// Owns everything a Problem points to.
struct Fixture {
  OperatorTree tree;
  Platform platform;
  PriceCatalog catalog;
  Throughput rho = 1.0;

  Problem problem() const {
    Problem p;
    p.tree = &tree;
    p.platform = &platform;
    p.catalog = &catalog;
    p.rho = rho;
    return p;
  }
};

/// The paper's Fig 1(a) tree: five operators, objects o0,o1,o2.
///   n4 = root, children n5 and n3;  n5 -> n2 (unary)
///   n2: leaf o0 + child n1;  n1: leaves o0, o1;  n3: leaves o1, o2
/// (paper names o1,o2,o3; zero-based here).  Object sizes/frequencies are
/// parameters so tests can steer loads.
inline OperatorTree fig1a_tree(double alpha = 1.0, MegaBytes size = 10.0,
                               Hertz freq = 0.5) {
  ObjectCatalog objects({
      {0, size, freq},
      {1, size * 2.0, freq},
      {2, size * 3.0, freq},
  });
  TreeBuilder b(objects);
  const int n4 = b.add_operator(kNoNode);
  const int n5 = b.add_operator(n4);
  const int n3 = b.add_operator(n4);
  const int n2 = b.add_operator(n5);
  const int n1 = b.add_operator(n2);
  b.add_leaf(n2, 0);
  b.add_leaf(n1, 0);
  b.add_leaf(n1, 1);
  b.add_leaf(n3, 1);
  b.add_leaf(n3, 2);
  return b.build(alpha);
}

/// A platform with explicit hosted types and uniform capacities.
inline Platform simple_platform(std::vector<std::vector<int>> hosted,
                                int num_types,
                                MBps server_card = 10000.0,
                                MBps link_sp = 1000.0,
                                MBps link_pp = 1000.0) {
  std::vector<DataServer> servers;
  for (std::size_t l = 0; l < hosted.size(); ++l) {
    servers.push_back(
        DataServer{static_cast<int>(l), server_card, std::move(hosted[l])});
  }
  return Platform(std::move(servers), link_sp, link_pp, num_types);
}

/// Fixture around fig1a with every object on every server (no routing
/// pressure) and the paper catalog.
inline Fixture fig1a_fixture(double alpha = 1.0, MegaBytes size = 10.0,
                             Hertz freq = 0.5) {
  Fixture f{
      fig1a_tree(alpha, size, freq),
      simple_platform({{0, 1, 2}, {0, 1, 2}}, 3),
      PriceCatalog::paper_default(),
      1.0,
  };
  return f;
}

/// Random paper-style instance for property tests.
inline Fixture random_fixture(std::uint64_t seed, int n_ops, double alpha,
                              MegaBytes size_lo = 5.0, MegaBytes size_hi = 30.0,
                              Hertz freq = 0.5) {
  Rng rng(seed);
  TreeGenConfig cfg;
  cfg.num_operators = n_ops;
  cfg.alpha = alpha;
  cfg.num_object_types = 15;
  cfg.object_size_lo = size_lo;
  cfg.object_size_hi = size_hi;
  cfg.download_freq = freq;
  OperatorTree tree = generate_random_tree(rng, cfg);

  ServerDistConfig dist;
  dist.num_servers = 6;
  dist.num_object_types = 15;
  Platform platform = make_paper_platform(rng, dist);

  return Fixture{std::move(tree), std::move(platform),
                 PriceCatalog::paper_default(), 1.0};
}

} // namespace insp::testhelpers
