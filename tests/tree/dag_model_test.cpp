// The DAG side of the application model: shared nodes via TreeBuilder's
// add_edge, cycle and root-consistency rejection in validate(), topological
// orders on non-tree graphs, and the shared-subexpression generator's
// structural invariants.
#include "tree/operator_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tree/tree_generator.hpp"

namespace insp {
namespace {

/// Diamond: c = JOIN(o0, o1) feeds both a and b, which feed the root.
OperatorTree diamond_dag() {
  ObjectCatalog objects({{0, 10.0, 0.5}, {1, 20.0, 0.5}});
  TreeBuilder b(objects);
  const int root = b.add_operator(kNoNode);
  const int a = b.add_operator(root);
  const int bb = b.add_operator(root);
  const int c = b.add_operator(a);
  b.add_leaf(c, 0);
  b.add_leaf(c, 1);
  b.add_edge(c, bb);
  return b.build(1.0);
}

TEST(DagModel, BuilderAddEdgeCreatesSharedNode) {
  const OperatorTree t = diamond_dag();
  EXPECT_FALSE(t.validate().has_value());
  EXPECT_FALSE(t.is_tree_shaped());
  EXPECT_EQ(t.num_edges(), 4);
  const OperatorNode& shared = t.op(3);
  ASSERT_TRUE(shared.is_shared());
  ASSERT_EQ(shared.out.size(), 2u);
  // build() fills every out-edge delta with the producer's output_mb.
  for (const OutEdge& e : shared.out) {
    EXPECT_DOUBLE_EQ(e.delta, shared.output_mb);
  }
  // Both consumers see the shared node as a child exactly once.
  EXPECT_EQ(t.op(1).children, (std::vector<int>{3}));
  EXPECT_EQ(t.op(2).children, (std::vector<int>{3}));
}

TEST(DagModel, TopologicalOrdersRespectSharedEdges) {
  const OperatorTree t = diamond_dag();
  const std::vector<int> down = t.top_down_order();
  ASSERT_EQ(down.size(), 4u);
  auto pos = [&](int id) {
    return std::find(down.begin(), down.end(), id) - down.begin();
  };
  // Consumers before producers: the shared node comes after BOTH its
  // consumers, not just the first.
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  const std::vector<int> up = t.bottom_up_order();
  ASSERT_EQ(up.size(), 4u);
  std::vector<int> reversed(down.rbegin(), down.rend());
  EXPECT_EQ(up, reversed);
}

TEST(DagModel, ValidateRejectsCycle) {
  // r <- a <-> b: a and b feed each other, so Kahn's algorithm never
  // reaches them.
  ObjectCatalog objects({{0, 10.0, 0.5}});
  std::vector<OperatorNode> ops(3);
  ops[0].id = 0;  // root
  ops[0].children = {1};
  ops[1].id = 1;
  ops[1].out = {{0, 1.0}, {2, 1.0}};
  ops[1].children = {2};
  ops[2].id = 2;
  ops[2].out = {{1, 1.0}};
  ops[2].children = {1};
  std::vector<LeafRef> leaves;
  OperatorTree cyclic(ops, leaves, 0, objects);
  const auto issue = cyclic.validate();
  ASSERT_TRUE(issue.has_value());
}

TEST(DagModel, ValidateRejectsRootWithOutEdge) {
  ObjectCatalog objects({{0, 10.0, 0.5}});
  std::vector<OperatorNode> ops(2);
  ops[0].id = 0;
  ops[0].out = {{1, 1.0}};  // declared root must not feed anyone
  std::vector<LeafRef> leaves = {{0, 0}, {0, 1}};
  ops[0].leaves = {0};
  ops[1].id = 1;
  ops[1].children = {0};
  ops[1].leaves = {1};
  OperatorTree bad(ops, leaves, 0, objects);
  EXPECT_TRUE(bad.validate().has_value());
}

TEST(DagModel, ValidateRejectsEdgeChildMismatch) {
  // Producer claims two consumers, but only one lists it as a child.
  ObjectCatalog objects({{0, 10.0, 0.5}});
  std::vector<OperatorNode> ops(3);
  ops[0].id = 0;
  ops[0].children = {2};
  ops[1].id = 1;
  ops[1].out = {{0, 1.0}};  // 0 does not list 1 as a child
  std::vector<LeafRef> leaves = {{0, 0}, {0, 1}, {0, 2}};
  ops[1].leaves = {0};
  ops[2].id = 2;
  ops[2].out = {{0, 1.0}};
  ops[2].leaves = {1};
  ops[0].leaves = {2};
  OperatorTree bad(ops, leaves, 0, objects);
  EXPECT_TRUE(bad.validate().has_value());
}

TEST(DagModel, SharedDagGeneratorProducesValidAcyclicDags) {
  TreeGenConfig cfg;
  cfg.num_operators = 30;
  cfg.alpha = 1.0;
  bool any_shared = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const OperatorTree t = generate_shared_dag(rng, cfg, 0.4);
    ASSERT_FALSE(t.validate().has_value()) << "seed " << seed;
    ASSERT_EQ(t.top_down_order().size(),
              static_cast<std::size_t>(t.num_operators()));
    for (const OperatorNode& n : t.operators()) {
      // Ids are creation-ordered consumer-first, so every out-edge points
      // to an older (smaller-id) operator: acyclic by construction.
      for (const OutEdge& e : n.out) EXPECT_LT(e.dst, n.id);
      any_shared = any_shared || n.is_shared();
    }
  }
  EXPECT_TRUE(any_shared);
}

TEST(DagModel, SharedDagZeroShareProbIsTree) {
  TreeGenConfig cfg;
  cfg.num_operators = 25;
  cfg.alpha = 1.0;
  Rng rng(9);
  const OperatorTree t = generate_shared_dag(rng, cfg, 0.0);
  EXPECT_TRUE(t.is_tree_shaped());
  EXPECT_FALSE(t.validate().has_value());
}

} // namespace
} // namespace insp
