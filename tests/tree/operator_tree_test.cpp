#include "tree/operator_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "../test_helpers.hpp"

namespace insp {
namespace {

using testhelpers::fig1a_tree;

TEST(OperatorTree, Fig1aStructure) {
  const OperatorTree t = fig1a_tree();
  EXPECT_EQ(t.num_operators(), 5);
  EXPECT_EQ(t.num_leaves(), 5);
  EXPECT_EQ(t.root(), 0);
  EXPECT_FALSE(t.validate().has_value());
}

TEST(OperatorTree, AlOperatorDetection) {
  const OperatorTree t = fig1a_tree();
  // n4 (id 0) and n5 (id 1) have no leaves; n3 (2), n2 (3), n1 (4) do.
  EXPECT_FALSE(t.op(0).is_al_operator());
  EXPECT_FALSE(t.op(1).is_al_operator());
  EXPECT_TRUE(t.op(2).is_al_operator());
  EXPECT_TRUE(t.op(3).is_al_operator());
  EXPECT_TRUE(t.op(4).is_al_operator());
  EXPECT_EQ(t.al_operators(), (std::vector<int>{2, 3, 4}));
}

TEST(OperatorTree, ArityConstraintHolds) {
  const OperatorTree t = fig1a_tree();
  for (const auto& n : t.operators()) {
    EXPECT_GE(n.arity(), 1);
    EXPECT_LE(n.arity(), 2);
  }
}

TEST(OperatorTree, ObjectTypesDeduplicated) {
  ObjectCatalog objects({{0, 10.0, 0.5}});
  TreeBuilder b(objects);
  const int op = b.add_operator(kNoNode);
  b.add_leaf(op, 0);
  b.add_leaf(op, 0);  // same object twice (paper: several leaves may share)
  const OperatorTree t = b.build(1.0);
  EXPECT_EQ(t.object_types_of(0), std::vector<int>{0});
  EXPECT_EQ(t.num_leaves(), 2);
}

TEST(OperatorTree, MassConservationDeltaRootEqualsLeafSum) {
  const OperatorTree t = fig1a_tree(1.0, 10.0);
  // Leaves: o0(10) at n2, o0(10)+o1(20) at n1, o1(20)+o2(30) at n3 = 90.
  EXPECT_DOUBLE_EQ(t.op(t.root()).output_mb, 90.0);
}

TEST(OperatorTree, WorkIsPowerLawOfInputMass) {
  const double alpha = 1.7;
  const OperatorTree t = fig1a_tree(alpha, 10.0);
  // n1 (id 4): inputs 10 + 20 = 30 -> w = 30^1.7.
  EXPECT_NEAR(t.op(4).work, std::pow(30.0, alpha), 1e-9);
  // n2 (id 3): leaf 10 + child n1 output 30 -> w = 40^1.7.
  EXPECT_NEAR(t.op(3).work, std::pow(40.0, alpha), 1e-9);
  // Unary n5 (id 1): single child n2 output 40 -> w = 40^1.7.
  EXPECT_NEAR(t.op(1).work, std::pow(40.0, alpha), 1e-9);
}

TEST(OperatorTree, WorkScaleMultiplies) {
  const OperatorTree base = fig1a_tree(1.0, 10.0);
  ObjectCatalog objects = base.catalog();
  OperatorTree copy = base;
  copy.compute_work_and_outputs(1.0, 2.5);
  for (int i = 0; i < base.num_operators(); ++i) {
    EXPECT_NEAR(copy.op(i).work, 2.5 * base.op(i).work, 1e-9);
  }
}

TEST(OperatorTree, BottomUpOrderPutsChildrenFirst) {
  const OperatorTree t = fig1a_tree();
  const auto order = t.bottom_up_order();
  ASSERT_EQ(order.size(), 5u);
  std::vector<int> position(5);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (const auto& n : t.operators()) {
    for (int c : n.children) {
      EXPECT_LT(position[static_cast<std::size_t>(c)],
                position[static_cast<std::size_t>(n.id)]);
    }
  }
}

TEST(OperatorTree, TopDownOrderStartsAtRoot) {
  const OperatorTree t = fig1a_tree();
  EXPECT_EQ(t.top_down_order().front(), t.root());
}

TEST(TreeBuilder, RejectsSecondRoot) {
  ObjectCatalog objects({{0, 1.0, 1.0}});
  TreeBuilder b(objects);
  b.add_operator(kNoNode);
  EXPECT_THROW(b.add_operator(kNoNode), std::invalid_argument);
}

TEST(TreeBuilder, RejectsUnknownParent) {
  ObjectCatalog objects({{0, 1.0, 1.0}});
  TreeBuilder b(objects);
  b.add_operator(kNoNode);
  EXPECT_THROW(b.add_operator(7), std::invalid_argument);
}

TEST(TreeBuilder, RejectsUnknownObjectType) {
  ObjectCatalog objects({{0, 1.0, 1.0}});
  TreeBuilder b(objects);
  const int op = b.add_operator(kNoNode);
  EXPECT_THROW(b.add_leaf(op, 3), std::invalid_argument);
}

TEST(TreeBuilder, RejectsArityZero) {
  ObjectCatalog objects({{0, 1.0, 1.0}});
  TreeBuilder b(objects);
  b.add_operator(kNoNode);  // no children, no leaves
  EXPECT_THROW(b.build(1.0), std::invalid_argument);
}

TEST(TreeBuilder, RejectsArityThree) {
  ObjectCatalog objects({{0, 1.0, 1.0}});
  TreeBuilder b(objects);
  const int op = b.add_operator(kNoNode);
  b.add_leaf(op, 0);
  b.add_leaf(op, 0);
  b.add_leaf(op, 0);
  EXPECT_THROW(b.build(1.0), std::invalid_argument);
}

TEST(OperatorTree, ValidateCatchesBrokenParentLink) {
  OperatorTree t = fig1a_tree();
  // Validation is also exercised through the builder; break a link via the
  // public surface: a tree constructed directly with inconsistent out-edges.
  std::vector<OperatorNode> ops(2);
  ops[0].id = 0;
  ops[0].children = {1};
  ops[1].id = 1;
  ops[1].out = {{0, 0.0}};
  std::vector<LeafRef> leaves = {{0, 0}, {0, 1}};
  ops[0].leaves = {0};
  ops[1].leaves = {1};
  ObjectCatalog objects({{0, 1.0, 1.0}});
  OperatorTree ok(ops, leaves, 0, objects);
  EXPECT_FALSE(ok.validate().has_value());

  ops[1].out = {{1, 0.0}};  // self-edge, not matching the children list
  OperatorTree bad(ops, leaves, 0, objects);
  EXPECT_TRUE(bad.validate().has_value());
}

TEST(OperatorTree, EdgeVolumeIsChildOutput) {
  const OperatorTree t = fig1a_tree(1.0, 10.0);
  EXPECT_DOUBLE_EQ(t.edge_volume(4), 30.0);  // n1 -> n2
  EXPECT_DOUBLE_EQ(t.edge_volume(3), 40.0);  // n2 -> n5
}

} // namespace
} // namespace insp
