#include "tree/tree_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tree/tree_stats.hpp"

namespace insp {
namespace {

TreeGenConfig base_config(int n) {
  TreeGenConfig cfg;
  cfg.num_operators = n;
  cfg.alpha = 0.9;
  cfg.num_object_types = 15;
  cfg.object_size_lo = 5.0;
  cfg.object_size_hi = 30.0;
  cfg.download_freq = 0.5;
  return cfg;
}

TEST(TreeGenerator, ExactOperatorCount) {
  Rng rng(1);
  for (int n : {1, 2, 5, 20, 60, 140}) {
    const OperatorTree t = generate_random_tree(rng, base_config(n));
    EXPECT_EQ(t.num_operators(), n);
    EXPECT_FALSE(t.validate().has_value());
  }
}

TEST(TreeGenerator, AtMostNDrawsWithinRange) {
  Rng rng(2);
  TreeGenConfig cfg = base_config(60);
  cfg.at_most_n = true;
  for (int i = 0; i < 50; ++i) {
    const OperatorTree t = generate_random_tree(rng, cfg);
    EXPECT_GE(t.num_operators(), 30);
    EXPECT_LE(t.num_operators(), 60);
  }
}

TEST(TreeGenerator, DeterministicGivenSeed) {
  Rng a(77), b(77);
  const OperatorTree ta = generate_random_tree(a, base_config(40));
  const OperatorTree tb = generate_random_tree(b, base_config(40));
  ASSERT_EQ(ta.num_operators(), tb.num_operators());
  ASSERT_EQ(ta.num_leaves(), tb.num_leaves());
  for (int i = 0; i < ta.num_operators(); ++i) {
    EXPECT_EQ(ta.op(i).parent(), tb.op(i).parent());
    EXPECT_DOUBLE_EQ(ta.op(i).work, tb.op(i).work);
  }
  for (int l = 0; l < ta.num_leaves(); ++l) {
    EXPECT_EQ(ta.leaf(l).object_type, tb.leaf(l).object_type);
  }
}

TEST(TreeGenerator, ObjectSizesWithinConfiguredRange) {
  Rng rng(3);
  TreeGenConfig cfg = base_config(30);
  cfg.object_size_lo = 450.0;
  cfg.object_size_hi = 530.0;
  const OperatorTree t = generate_random_tree(rng, cfg);
  for (const auto& ot : t.catalog().all()) {
    EXPECT_GE(ot.size_mb, 450.0);
    EXPECT_LT(ot.size_mb, 530.0);
    EXPECT_DOUBLE_EQ(ot.freq_hz, 0.5);
  }
}

TEST(TreeGenerator, BinaryProbOneGivesFullBinaryTree) {
  Rng rng(4);
  TreeGenConfig cfg = base_config(31);
  cfg.binary_prob = 1.0;
  const OperatorTree t = generate_random_tree(rng, cfg);
  // Full binary: exactly N+1 leaves and every operator has arity 2.
  EXPECT_EQ(t.num_leaves(), 32);
  for (const auto& n : t.operators()) {
    EXPECT_EQ(n.arity(), 2);
  }
}

TEST(TreeGenerator, BinaryProbZeroGivesChain) {
  Rng rng(5);
  TreeGenConfig cfg = base_config(10);
  cfg.binary_prob = 0.0;
  const OperatorTree t = generate_random_tree(rng, cfg);
  EXPECT_EQ(t.num_leaves(), 1);
  const TreeStats stats = compute_tree_stats(t);
  EXPECT_EQ(stats.depth, 10);
}

TEST(TreeGenerator, DefaultLeafCountNearHalfN) {
  Rng rng(6);
  double total_leaves = 0;
  const int reps = 40, n = 100;
  for (int i = 0; i < reps; ++i) {
    total_leaves += generate_random_tree(rng, base_config(n)).num_leaves();
  }
  // E[leaves] = N * E[arity] - (N-1) ~ N/2 + 1 for binary_prob = 0.5.
  EXPECT_NEAR(total_leaves / reps, n / 2.0 + 1.0, 6.0);
}

TEST(TreeGenerator, LeafTypesCoverCatalog) {
  Rng rng(7);
  TreeGenConfig cfg = base_config(200);
  std::set<int> seen;
  const OperatorTree t = generate_random_tree(rng, cfg);
  for (const auto& l : t.leaf_refs()) seen.insert(l.object_type);
  // With ~100 leaves over 15 types, near-complete coverage is expected.
  EXPECT_GE(seen.size(), 12u);
  for (int type : seen) {
    EXPECT_GE(type, 0);
    EXPECT_LT(type, 15);
  }
}

TEST(TreeGenerator, SharedCatalogReuse) {
  Rng rng(8);
  ObjectCatalog catalog =
      ObjectCatalog::random(rng, 15, 5.0, 30.0, 0.5);
  const OperatorTree t1 = generate_random_tree(rng, base_config(20), catalog);
  const OperatorTree t2 = generate_random_tree(rng, base_config(20), catalog);
  for (int k = 0; k < catalog.count(); ++k) {
    EXPECT_DOUBLE_EQ(t1.catalog().type(k).size_mb,
                     t2.catalog().type(k).size_mb);
  }
}

TEST(TreeGenerator, LeftDeepShape) {
  Rng rng(9);
  const OperatorTree t = generate_left_deep_tree(rng, base_config(8));
  EXPECT_EQ(t.num_operators(), 8);
  EXPECT_EQ(t.num_leaves(), 9);  // one per level + two at the bottom
  EXPECT_FALSE(t.validate().has_value());
  // Every operator except the deepest has exactly one operator child.
  int unary_chain = 0;
  for (const auto& n : t.operators()) {
    if (n.children.size() == 1) ++unary_chain;
    EXPECT_LE(n.children.size(), 1u);
  }
  EXPECT_EQ(unary_chain, 7);
  const TreeStats stats = compute_tree_stats(t);
  EXPECT_EQ(stats.depth, 8);
}

TEST(TreeGenerator, ReductionTreeShape) {
  Rng rng(31);
  const ObjectCatalog catalog =
      ObjectCatalog::random(rng, 8, 10.0, 20.0, 0.5);
  for (int sources : {1, 2, 3, 7, 8, 16}) {
    const OperatorTree t = generate_reduction_tree(catalog, sources, 1.0);
    EXPECT_FALSE(t.validate().has_value());
    // sources al-operators + (sources - 1) reduction operators.
    EXPECT_EQ(t.num_operators(), 2 * sources - 1) << sources;
    EXPECT_EQ(static_cast<int>(t.al_operators().size()), sources) << sources;
    EXPECT_EQ(t.num_leaves(), 2 * sources) << sources;
  }
}

TEST(TreeGenerator, ReductionTreeIsBalanced) {
  Rng rng(32);
  const ObjectCatalog catalog =
      ObjectCatalog::random(rng, 8, 10.0, 20.0, 0.5);
  const OperatorTree t = generate_reduction_tree(catalog, 16, 1.0);
  const TreeStats s = compute_tree_stats(t);
  // 16 sources: log2(16) = 4 reduction levels + the al level.
  EXPECT_EQ(s.depth, 5);
}

TEST(TreeGenerator, ReductionTreeCyclesThroughTypes) {
  Rng rng(33);
  const ObjectCatalog catalog =
      ObjectCatalog::random(rng, 3, 10.0, 20.0, 0.5);
  const OperatorTree t =
      generate_reduction_tree(catalog, 5, 1.0, /*leaves_per_source=*/1);
  // Sources 0..4 -> types 0,1,2,0,1.
  std::vector<int> types;
  for (const auto& l : t.leaf_refs()) types.push_back(l.object_type);
  std::sort(types.begin(), types.end());
  EXPECT_EQ(types, (std::vector<int>{0, 0, 1, 1, 2}));
}

TEST(TreeGenerator, ReductionTreeRejectsBadArguments) {
  Rng rng(34);
  const ObjectCatalog catalog =
      ObjectCatalog::random(rng, 3, 10.0, 20.0, 0.5);
  EXPECT_THROW(generate_reduction_tree(catalog, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(generate_reduction_tree(catalog, 4, 1.0, 3),
               std::invalid_argument);
}

TEST(TreeGenerator, SingleOperatorTree) {
  Rng rng(10);
  const OperatorTree t = generate_random_tree(rng, base_config(1));
  EXPECT_EQ(t.num_operators(), 1);
  EXPECT_GE(t.num_leaves(), 1);
  EXPECT_LE(t.num_leaves(), 2);
}

TEST(TreeGenerator, RejectsNonPositiveCount) {
  Rng rng(11);
  EXPECT_THROW(generate_random_tree(rng, base_config(0)),
               std::invalid_argument);
}

TEST(TreeGenerator, FrequencyOverride) {
  Rng rng(12);
  TreeGenConfig cfg = base_config(10);
  cfg.download_freq = 0.02;  // low frequency 1/50
  OperatorTree t = generate_random_tree(rng, cfg);
  for (const auto& ot : t.catalog().all()) {
    EXPECT_DOUBLE_EQ(ot.freq_hz, 0.02);
    EXPECT_NEAR(ot.rate(), ot.size_mb * 0.02, 1e-12);
  }
  t.mutable_catalog().set_frequency(0.5);
  for (const auto& ot : t.catalog().all()) {
    EXPECT_DOUBLE_EQ(ot.freq_hz, 0.5);
  }
}

} // namespace
} // namespace insp
