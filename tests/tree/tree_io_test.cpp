#include "tree/tree_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "../test_helpers.hpp"
#include "tree/tree_generator.hpp"

namespace insp {
namespace {

using testhelpers::fig1a_tree;

TEST(TreeIo, TextRoundTripPreservesStructure) {
  const OperatorTree t = fig1a_tree(1.3, 10.0);
  const OperatorTree r = from_text(to_text(t, 1.3));
  ASSERT_EQ(r.num_operators(), t.num_operators());
  ASSERT_EQ(r.num_leaves(), t.num_leaves());
  EXPECT_EQ(r.root(), t.root());
  for (int i = 0; i < t.num_operators(); ++i) {
    EXPECT_EQ(r.op(i).parent(), t.op(i).parent());
    EXPECT_EQ(r.op(i).children, t.op(i).children);
    EXPECT_DOUBLE_EQ(r.op(i).work, t.op(i).work);
    EXPECT_DOUBLE_EQ(r.op(i).output_mb, t.op(i).output_mb);
  }
  for (int l = 0; l < t.num_leaves(); ++l) {
    EXPECT_EQ(r.leaf(l).object_type, t.leaf(l).object_type);
    EXPECT_EQ(r.leaf(l).parent_op, t.leaf(l).parent_op);
  }
}

TEST(TreeIo, RoundTripRandomTrees) {
  Rng rng(5);
  TreeGenConfig cfg;
  cfg.num_operators = 40;
  cfg.alpha = 1.7;
  for (int i = 0; i < 10; ++i) {
    const OperatorTree t = generate_random_tree(rng, cfg);
    const OperatorTree r = from_text(to_text(t, cfg.alpha));
    ASSERT_EQ(r.num_operators(), t.num_operators());
    for (int op = 0; op < t.num_operators(); ++op) {
      ASSERT_EQ(r.op(op).parent(), t.op(op).parent());
      ASSERT_NEAR(r.op(op).work, t.op(op).work, 1e-9 * (1 + t.op(op).work));
    }
  }
}

TEST(TreeIo, DotContainsAllNodesAndEdges) {
  const OperatorTree t = fig1a_tree();
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (int i = 0; i < t.num_operators(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
  // 4 operator edges + 5 leaf edges.
  std::size_t arrows = 0, pos = 0;
  while ((pos = dot.find("->", pos)) != std::string::npos) {
    ++arrows;
    pos += 2;
  }
  EXPECT_EQ(arrows, 9u);
}

TEST(TreeIo, CommentsAndBlankLinesIgnored) {
  const OperatorTree t = fig1a_tree();
  std::string text = to_text(t, 1.0);
  text += "\n# trailing comment\n\n";
  EXPECT_NO_THROW(from_text(text));
}

TEST(TreeIo, RejectsMissingHeader) {
  EXPECT_THROW(from_text("objects 0\n"), std::invalid_argument);
}

TEST(TreeIo, RejectsCountMismatch) {
  const OperatorTree t = fig1a_tree();
  std::string text = to_text(t, 1.0);
  text += "object 99 5 0.5\n";  // extra object not counted in header
  EXPECT_THROW(from_text(text), std::invalid_argument);
}

TEST(TreeIo, RejectsUnknownDirective) {
  EXPECT_THROW(from_text("cinsp-tree 1\nbogus 1 2 3\n"),
               std::invalid_argument);
}

TEST(TreeIo, RejectsDuplicateOpIds) {
  const std::string text =
      "cinsp-tree 1\n"
      "alpha 1 work_scale 1\n"
      "objects 1\nobject 0 5 0.5\n"
      "operators 2 root 0\n"
      "op 0 parent -1\nop 0 parent -1\n"
      "leaf 0 0\n";
  EXPECT_THROW(from_text(text), std::invalid_argument);
}

TEST(TreeIo, SaveAndLoadFile) {
  const std::string path = testing::TempDir() + "/cinsp_tree_io_test.tree";
  const OperatorTree t = fig1a_tree(0.9);
  save_tree(t, path, 0.9);
  const OperatorTree r = load_tree(path);
  EXPECT_EQ(r.num_operators(), t.num_operators());
  EXPECT_DOUBLE_EQ(r.op(0).work, t.op(0).work);
  std::remove(path.c_str());
}

TEST(TreeIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_tree("/nonexistent/x.tree"), std::runtime_error);
}

TEST(TreeIo, ForestRoundTripPreservesRootsAndStructure) {
  // Build a two-tree forest by hand.
  ObjectCatalog objects({{0, 10.0, 0.5}, {1, 20.0, 0.5}});
  std::vector<OperatorNode> ops(3);
  std::vector<LeafRef> leaves;
  ops[0].id = 0;
  ops[1].id = 1;
  ops[1].out = {{0, 0.0}};
  ops[0].children = {1};
  ops[2].id = 2;  // second root
  leaves.push_back({0, 1});
  ops[1].leaves = {0};
  leaves.push_back({1, 0});
  ops[0].leaves = {1};
  leaves.push_back({1, 2});
  ops[2].leaves = {2};
  OperatorTree forest(ops, leaves, std::vector<int>{0, 2}, objects);
  ASSERT_FALSE(forest.validate().has_value());
  forest.compute_work_and_outputs(1.0);

  const OperatorTree r = from_text(to_text(forest, 1.0));
  EXPECT_TRUE(r.is_forest());
  EXPECT_EQ(r.roots(), (std::vector<int>{0, 2}));
  ASSERT_EQ(r.num_operators(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.op(i).parent(), forest.op(i).parent());
    EXPECT_DOUBLE_EQ(r.op(i).work, forest.op(i).work);
  }
}

TEST(TreeIo, ForestTopDownCoversAllTrees) {
  ObjectCatalog objects({{0, 10.0, 0.5}});
  std::vector<OperatorNode> ops(2);
  std::vector<LeafRef> leaves = {{0, 0}, {0, 1}};
  ops[0].id = 0;
  ops[0].leaves = {0};
  ops[1].id = 1;
  ops[1].leaves = {1};
  OperatorTree forest(ops, leaves, std::vector<int>{0, 1}, objects);
  EXPECT_EQ(forest.top_down_order().size(), 2u);
  EXPECT_EQ(forest.bottom_up_order().size(), 2u);
}

} // namespace
} // namespace insp
