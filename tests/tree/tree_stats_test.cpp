#include "tree/tree_stats.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "tree/tree_generator.hpp"

namespace insp {
namespace {

using testhelpers::fig1a_tree;

TEST(TreeStats, Fig1aAggregates) {
  const OperatorTree t = fig1a_tree(1.0, 10.0, 0.5);
  const TreeStats s = compute_tree_stats(t);
  EXPECT_EQ(s.num_operators, 5);
  EXPECT_EQ(s.num_leaves, 5);
  EXPECT_EQ(s.num_al_operators, 3);
  EXPECT_EQ(s.distinct_object_types, 3);
  EXPECT_EQ(s.depth, 4);  // n4 -> n5 -> n2 -> n1
  EXPECT_DOUBLE_EQ(s.total_leaf_mass, 90.0);
  // Downloads: per-leaf rates = (10+10+20+20+30) * 0.5.
  EXPECT_DOUBLE_EQ(s.total_download_demand, 45.0);
  // Largest edge: n3 -> n4 carries 50.
  EXPECT_DOUBLE_EQ(s.max_edge_volume, 50.0);
}

TEST(TreeStats, PopularityCountsOperatorsNotLeaves) {
  const OperatorTree t = fig1a_tree();
  const auto pop = object_popularity(t);
  ASSERT_EQ(pop.size(), 3u);
  EXPECT_EQ(pop[0], 2);  // o0 needed by n2 and n1
  EXPECT_EQ(pop[1], 2);  // o1 needed by n1 and n3
  EXPECT_EQ(pop[2], 1);  // o2 needed by n3
}

TEST(TreeStats, PopularityDeduplicatesWithinOperator) {
  ObjectCatalog objects({{0, 10.0, 0.5}});
  TreeBuilder b(objects);
  const int op = b.add_operator(kNoNode);
  b.add_leaf(op, 0);
  b.add_leaf(op, 0);
  const OperatorTree t = b.build(1.0);
  EXPECT_EQ(object_popularity(t)[0], 1);
}

TEST(TreeStats, EdgesSortedByVolumeDesc) {
  const OperatorTree t = fig1a_tree(1.0, 10.0);
  const auto edges = edges_by_volume_desc(t);
  ASSERT_EQ(edges.size(), 4u);  // every non-root op
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].delta, edges[i].delta);
  }
  // n3 (id 2) carries 50 MB: the largest edge.
  EXPECT_EQ(edges.front().child, 2);
}

TEST(TreeStats, DepthsRootIsOne) {
  const OperatorTree t = fig1a_tree();
  const auto d = operator_depths(t);
  EXPECT_EQ(d[static_cast<std::size_t>(t.root())], 1);
  for (const auto& n : t.operators()) {
    if (n.parent() != kNoNode) {
      EXPECT_EQ(d[static_cast<std::size_t>(n.id)],
                d[static_cast<std::size_t>(n.parent())] + 1);
    }
  }
}

TEST(TreeStats, TotalWorkMatchesSum) {
  const OperatorTree t = fig1a_tree(1.2, 10.0);
  const TreeStats s = compute_tree_stats(t);
  MegaOps sum = 0;
  for (const auto& n : t.operators()) sum += n.work;
  EXPECT_DOUBLE_EQ(s.total_work, sum);
}

TEST(TreeStats, RandomTreeInvariants) {
  Rng rng(21);
  TreeGenConfig cfg;
  cfg.num_operators = 80;
  for (int rep = 0; rep < 10; ++rep) {
    const OperatorTree t = generate_random_tree(rng, cfg);
    const TreeStats s = compute_tree_stats(t);
    // Mass conservation: root output equals total leaf mass.
    EXPECT_NEAR(t.op(t.root()).output_mb, s.total_leaf_mass, 1e-9);
    EXPECT_GE(s.num_al_operators, 1);
    EXPECT_LE(s.num_al_operators, s.num_operators);
    EXPECT_GE(s.depth, 1);
    EXPECT_LE(s.depth, s.num_operators);
  }
}

} // namespace
} // namespace insp
