#include "util/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace insp {
namespace {

TEST(AsciiChart, RendersMarkersAndLegend) {
  ChartSeries s;
  s.name = "costs";
  s.marker = 'S';
  s.points = {{0, 0}, {1, 1}, {2, 4}};
  ChartOptions opt;
  opt.title = "test chart";
  opt.x_label = "N";
  const std::string out = render_ascii_chart({s}, opt);
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find('S'), std::string::npos);
  EXPECT_NE(out.find("S=costs"), std::string::npos);
  EXPECT_NE(out.find("N"), std::string::npos);
}

TEST(AsciiChart, SkipsNaNPoints) {
  ChartSeries s;
  s.name = "partial";
  s.marker = 'P';
  s.points = {{0, 1},
              {1, std::numeric_limits<double>::quiet_NaN()},
              {2, 3}};
  const std::string out = render_ascii_chart({s}, {});
  int count = 0;
  for (char c : out) count += c == 'P' ? 1 : 0;
  EXPECT_EQ(count, 3);  // 2 data points + 1 in the legend
}

TEST(AsciiChart, AllNaNProducesNote) {
  ChartSeries s;
  s.name = "empty";
  s.points = {{0, std::numeric_limits<double>::quiet_NaN()}};
  const std::string out = render_ascii_chart({s}, {});
  EXPECT_NE(out.find("no finite data"), std::string::npos);
}

TEST(AsciiChart, SinglePointDoesNotDivideByZero) {
  ChartSeries s;
  s.name = "one";
  s.marker = 'O';
  s.points = {{5, 5}};
  const std::string out = render_ascii_chart({s}, {});
  EXPECT_NE(out.find('O'), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesAllAppear) {
  ChartSeries a, b;
  a.name = "A";
  a.marker = 'a';
  a.points = {{0, 0}, {1, 10}};
  b.name = "B";
  b.marker = 'b';
  b.points = {{0, 10}, {1, 0}};
  const std::string out = render_ascii_chart({a, b}, {});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiChart, TickLabelsUseUnits) {
  ChartSeries s;
  s.name = "money";
  s.marker = 'm';
  s.points = {{0, 50000}, {10, 400000}};
  const std::string out = render_ascii_chart({s}, {});
  EXPECT_NE(out.find('k'), std::string::npos);  // 400k-style tick
}

} // namespace
} // namespace insp
