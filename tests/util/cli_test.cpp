#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace insp {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, SpaceSeparatedValues) {
  auto args = make({"prog", "--n", "60", "--alpha", "1.7"});
  EXPECT_EQ(args.get_int("n", 0), 60);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0), 1.7);
}

TEST(Cli, EqualsSeparatedValues) {
  auto args = make({"prog", "--seed=99", "--csv=out.csv"});
  EXPECT_EQ(args.get_u64("seed", 0), 99u);
  EXPECT_EQ(args.get("csv", ""), "out.csv");
}

TEST(Cli, BooleanFlagForms) {
  auto args = make({"prog", "--verbose", "--fast=false"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("fast", true));
  EXPECT_TRUE(args.get_bool("absent", true));
  EXPECT_FALSE(args.get_bool("absent", false));
}

TEST(Cli, DefaultsWhenMissing) {
  auto args = make({"prog"});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_EQ(args.get("name", "def"), "def");
  EXPECT_FALSE(args.has("n"));
}

TEST(Cli, PositionalArguments) {
  auto args = make({"prog", "input.tree", "--n", "5", "out.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.tree");
  EXPECT_EQ(args.positional()[1], "out.txt");
}

TEST(Cli, UnknownOptionDetection) {
  auto args = make({"prog", "--n", "5", "--typo", "x"});
  const auto unknown = args.unknown({"n", "alpha"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Cli, FlagFollowedByFlagHasTrueValue) {
  auto args = make({"prog", "--a", "--b", "7"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_EQ(args.get_int("b", 0), 7);
}

} // namespace
} // namespace insp
