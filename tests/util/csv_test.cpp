#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace insp {
namespace {

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, InMemoryRows) {
  CsvWriter csv;
  csv.header({"a", "b", "c"});
  csv.cell(1).cell(2.5).cell(std::string("x,y"));
  csv.end_row();
  EXPECT_EQ(csv.str(), "a,b,c\n1,2.5,\"x,y\"\n");
}

TEST(Csv, IntegralDoublesPrintWithoutDecimals) {
  CsvWriter csv;
  csv.cell(7548.0);
  csv.end_row();
  EXPECT_EQ(csv.str(), "7548\n");
}

TEST(Csv, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/cinsp_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"x", "y"});
    csv.cell(1).cell(std::string("v"));
    csv.end_row();
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,y");
  EXPECT_EQ(line2, "1,v");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/file.csv"), std::runtime_error);
}

} // namespace
} // namespace insp
