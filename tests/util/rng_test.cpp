#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace insp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitmixKnownSequenceIsStable) {
  // Pin the derived sequence so instances regenerate identically across
  // library versions (the experiment-reproducibility contract).
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_EQ(first, 0xe220a8397b1dcdafull);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ull);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.uniform_int(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 7))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 8 * 0.1);
  }
}

TEST(Rng, CanonicalInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.canonical();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(5.0, 30.0);
    ASSERT_GE(v, 5.0);
    ASSERT_LT(v, 30.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    hits += rng.bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.25, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, IndexBounds) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.index(7), 7u);
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.index(1), 0u);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Streams should differ from each other and from the parent.
  EXPECT_NE(child1.next_u64(), child2.next_u64());
  // Splitting is itself deterministic.
  Rng parent2(31);
  Rng child1b = parent2.split();
  parent2.split();
  Rng cmp = child1;  // child1 already advanced one step
  (void)cmp;
  child1b.next_u64();
  EXPECT_EQ(child1.next_u64(), child1b.next_u64());
}

} // namespace
} // namespace insp
