// ScratchArena unit tests: pointer stability across growth, capacity reuse
// after reset(), and alignment of every allocation.
#include "util/scratch_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace insp {
namespace {

TEST(ScratchArena, PointersStayValidWhileArenaGrows) {
  ScratchArena arena;
  // Force many growth steps; earlier blocks must remain intact (chunked
  // storage, never realloc).
  std::vector<double*> blocks;
  for (int i = 0; i < 64; ++i) {
    double* p = arena.alloc<double>(97);
    for (int j = 0; j < 97; ++j) p[j] = i * 1000.0 + j;
    blocks.push_back(p);
  }
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 97; ++j) {
      ASSERT_EQ(blocks[static_cast<std::size_t>(i)][j], i * 1000.0 + j);
    }
  }
}

TEST(ScratchArena, ResetReusesCapacityWithoutShrinking) {
  ScratchArena arena;
  for (int i = 0; i < 16; ++i) arena.alloc<int>(1000);
  const std::size_t grown = arena.capacity_bytes();
  ASSERT_GT(grown, 0u);
  arena.reset();
  EXPECT_EQ(arena.capacity_bytes(), grown);
  // A same-shape second pass fits inside the retained chunks.
  for (int i = 0; i < 16; ++i) arena.alloc<int>(1000);
  EXPECT_EQ(arena.capacity_bytes(), grown);
}

TEST(ScratchArena, AllocationsAreAlignedPerType) {
  ScratchArena arena;
  for (int i = 0; i < 100; ++i) {
    // Interleave widths so the cursor lands on odd offsets.
    auto* c = arena.alloc<unsigned char>(1 + i % 3);
    (void)c;
    auto* d = arena.alloc<double>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
    auto* ll = arena.alloc<long long>(2);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ll) % alignof(long long), 0u);
  }
}

TEST(ScratchArena, ZeroSizedAllocIsHarmless) {
  ScratchArena arena;
  double* p = arena.alloc<double>(0);
  (void)p;
  int* q = arena.alloc<int>(4);
  q[0] = 1;
  q[3] = 4;
  EXPECT_EQ(q[0] + q[3], 5);
}

} // namespace
} // namespace insp
