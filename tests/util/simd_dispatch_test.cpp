// Dispatch-model semantics (docs/DESIGN.md §11): parsing, detection
// ordering, the never-widen clamp, and the kernel-table fallback chain.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/simd_kernels.hpp"

namespace insp {
namespace {

TEST(SimdDispatch, ParseRoundTripsEveryTier) {
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2}) {
    simd::Isa parsed;
    ASSERT_TRUE(simd::parse_isa(simd::to_string(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
}

TEST(SimdDispatch, ParseIsCaseInsensitiveAndRejectsJunk) {
  simd::Isa parsed;
  EXPECT_TRUE(simd::parse_isa("AVX2", &parsed));
  EXPECT_EQ(parsed, simd::Isa::kAvx2);
  EXPECT_TRUE(simd::parse_isa("Scalar", &parsed));
  EXPECT_EQ(parsed, simd::Isa::kScalar);
  EXPECT_FALSE(simd::parse_isa("avx512", &parsed));
  EXPECT_FALSE(simd::parse_isa("", &parsed));
  EXPECT_FALSE(simd::parse_isa("sse", &parsed));
  EXPECT_FALSE(simd::parse_isa(nullptr, &parsed));
}

TEST(SimdDispatch, ForcingNeverWidensPastDetection) {
  const simd::Isa detected = simd::detected_isa();
  // Ask for the widest tier: active must clamp to what the host has.
  simd::set_forced_isa(simd::Isa::kAvx2);
  EXPECT_LE(simd::active_isa(), detected);
  // Narrowing is always honored exactly.
  simd::set_forced_isa(simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  simd::clear_forced_isa();
  EXPECT_EQ(simd::active_isa(), detected);
}

TEST(SimdDispatch, KernelTableFallbackNeverReturnsMissingTier) {
  // kernels_for() must hand back a table for a tier the binary actually
  // compiled; asking for a tier the build lacks falls back down the chain
  // (avx2 -> sse2 -> scalar) instead of returning null.  Host clamping is
  // the caller's job: active_kernels() resolves through active_isa().
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2}) {
    const simdk::KernelTable* table = simdk::kernels_for(isa);
    ASSERT_NE(table, nullptr);
    EXPECT_LE(table->isa, isa);
    EXPECT_NE(table->probe_candidates, nullptr);
    EXPECT_NE(table->probe_configs, nullptr);
  }
  // The active table always matches the active ISA's resolution.
  simd::set_forced_isa(simd::Isa::kScalar);
  EXPECT_EQ(simdk::active_kernels()->isa, simd::Isa::kScalar);
  simd::clear_forced_isa();
}

} // namespace
} // namespace insp
