#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace insp {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SampleSet, PercentileSingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(SampleSet, PercentileAfterLaterAdds) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSet, UnsortedInsertOrder) {
  SampleSet s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

} // namespace
} // namespace insp
