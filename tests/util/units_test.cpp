// The unit conversions are load-bearing: the entire calibration argument
// (docs/DESIGN.md §6) rests on them.  Pin them.
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace insp {
namespace {

TEST(Units, GbpsToMBps) {
  EXPECT_DOUBLE_EQ(units::gbps(1), 125.0);
  EXPECT_DOUBLE_EQ(units::gbps(2), 250.0);
  EXPECT_DOUBLE_EQ(units::gbps(4), 500.0);
  EXPECT_DOUBLE_EQ(units::gbps(10), 1250.0);
  EXPECT_DOUBLE_EQ(units::gbps(20), 2500.0);
}

TEST(Units, GigabytesPerSecToMBps) {
  EXPECT_DOUBLE_EQ(units::gigabytes_per_sec(1.0), 1000.0);   // links
  EXPECT_DOUBLE_EQ(units::gigabytes_per_sec(10.0), 10000.0); // server cards
}

TEST(Units, GhzToMopsPerSec) {
  EXPECT_DOUBLE_EQ(units::ghz(11.72), 11720.0);
  EXPECT_DOUBLE_EQ(units::ghz(46.88), 46880.0);
}

TEST(Units, FitsWithinExactBoundary) {
  EXPECT_TRUE(fits_within(100.0, 100.0));
  EXPECT_TRUE(fits_within(0.0, 0.0));
  EXPECT_FALSE(fits_within(100.1, 100.0));
}

TEST(Units, FitsWithinToleratesAccumulationNoise) {
  double load = 0.0;
  for (int i = 0; i < 10; ++i) load += 10.0 + 1e-13;
  EXPECT_TRUE(fits_within(load, 100.0));
}

TEST(Units, FitsWithinRejectsRealViolations) {
  // The smallest real violation in the model is one object rate
  // (>= 5 MB * 0.02 Hz = 0.1 MB/s) — far above the epsilon.
  EXPECT_FALSE(fits_within(100.1, 100.0));
  EXPECT_FALSE(fits_within(0.1, 0.0));
}

TEST(Units, CalibrationAnchorsFromThePaper) {
  // The three feasibility anchors of docs/DESIGN.md §6, stated as arithmetic:
  // root work (sum leaf MB)^alpha in Mops vs the fastest CPU in Mops/s.
  const double fastest = units::ghz(46.88);
  // N=60 trees: ~30 leaves x 17.5 MB ~ 525 MB. Feasible at alpha 1.7,
  // infeasible at 1.8 (paper Fig 3 thresholds).
  EXPECT_LT(std::pow(525.0, 1.7), fastest);
  EXPECT_GT(std::pow(525.0, 1.8), fastest);
  // N=20 trees: ~175 MB. Infeasible just past alpha ~2.1 (paper: 2.2).
  EXPECT_LT(std::pow(175.0, 2.0), fastest);
  EXPECT_GT(std::pow(175.0, 2.2), fastest);
  // Large objects: one 450-530 MB download at 1/2 Hz exceeds a 1 Gbps card
  // but fits a 1 GB/s link.
  EXPECT_GT(450.0 * 0.5, units::gbps(1));
  EXPECT_LT(530.0 * 0.5, units::gigabytes_per_sec(1.0));
}

} // namespace
} // namespace insp
